#ifndef LDLOPT_STORAGE_STATISTICS_H_
#define LDLOPT_STORAGE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/literal.h"
#include "storage/database.h"

namespace ldl {

/// Statistics for one relation, in the style of System R catalogs:
/// cardinality plus per-column distinct counts. These feed the cost model's
/// selectivity and fan-out estimates (paper section 6: "information about
/// database statistics and various estimates").
struct RelationStats {
  double cardinality = 0;
  std::vector<double> distinct;  ///< one entry per column

  /// Selectivity of `col = constant`: 1/distinct[col].
  double EqConstSelectivity(size_t col) const;
  /// Selectivity of an equi-join on this column against a column with
  /// `other_distinct` values: 1/max(d1, d2).
  double EqJoinSelectivity(size_t col, double other_distinct) const;
  /// Average number of tuples sharing one value of `col`.
  double FanOut(size_t col) const;
};

/// A snapshot of statistics for every relation in a database, plus manual
/// overrides so benchmarks can model hypothetical database states without
/// materializing them.
class Statistics {
 public:
  Statistics() = default;

  /// Computes stats for every relation currently in `db`.
  static Statistics Collect(const Database& db);

  /// Registers/overrides stats for a predicate (used by the random-query
  /// generators and by tests).
  void Set(const PredicateId& pred, RelationStats stats);

  /// Stats for `pred`; falls back to `default_stats()` when unknown.
  const RelationStats& Get(const PredicateId& pred) const;

  bool Has(const PredicateId& pred) const { return stats_.count(pred) > 0; }

  /// Every predicate with registered stats, sorted (stable enumeration for
  /// exports and the /stats coverage listing).
  std::vector<PredicateId> Predicates() const;

  /// Stats assumed for predicates we know nothing about (derived predicates
  /// before estimation, missing relations).
  const RelationStats& default_stats() const { return default_stats_; }
  void set_default_stats(RelationStats s) { default_stats_ = std::move(s); }

  /// Snapshot generation: bumped each time the owner re-collects statistics
  /// (LdlSystem::RefreshStatistics). Logged per query so offline analysis
  /// can tell which plan decisions predate a stats refresh.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t e) { epoch_ = e; }

  std::string ToString() const;

 private:
  std::unordered_map<PredicateId, RelationStats, PredicateIdHash> stats_;
  RelationStats default_stats_{100.0, {}};
  uint64_t epoch_ = 0;
};

}  // namespace ldl

#endif  // LDLOPT_STORAGE_STATISTICS_H_
