#include "engine/fixpoint.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>

#include "base/strings.h"
#include "graph/dependency_graph.h"
#include "storage/sharded.h"

namespace ldl {

const char* RecursionMethodToString(RecursionMethod method) {
  switch (method) {
    case RecursionMethod::kNaive:
      return "naive";
    case RecursionMethod::kSemiNaive:
      return "seminaive";
    case RecursionMethod::kMagic:
      return "magic";
    case RecursionMethod::kCounting:
      return "counting";
  }
  return "?";
}

std::string FixpointStats::ToString() const {
  return StrCat("iterations=", iterations, " ", counters.ToString());
}

void FixpointStats::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("engine.fixpoint.iterations")->Increment(iterations);
  counters.ExportTo(metrics);
}

void FixpointStats::WriteIterationsJson(std::ostream& os) const {
  os << "[";
  for (size_t i = 0; i < per_iteration.size(); ++i) {
    const FixpointIteration& it = per_iteration[i];
    if (i > 0) os << ",";
    os << "\n  {\"clique\": \"" << JsonEscape(it.clique)
       << "\", \"method\": \"" << JsonEscape(it.method)
       << "\", \"iteration\": " << it.iteration
       << ", \"delta_tuples\": " << it.delta_tuples
       << ", \"derivations\": " << it.derivations
       << ", \"wall_ms\": " << it.wall_ms << "}";
  }
  if (!per_iteration.empty()) os << "\n";
  os << "]\n";
}

namespace {

/// Shared machinery for evaluating one program bottom-up, one strongly
/// connected component at a time.
class ProgramEvaluator {
 public:
  ProgramEvaluator(const Program& program, RecursionMethod method,
                   Database* base, Database* scratch, FixpointStats* stats,
                   const FixpointOptions& options)
      : program_(program),
        method_(method),
        base_(base),
        scratch_(scratch),
        stats_(stats),
        options_(options) {}

  Status Run() {
    DependencyGraph graph = DependencyGraph::Build(program_);
    LDL_RETURN_NOT_OK(graph.CheckStratified());
    if (Parallel()) {
      options_.trace.Set("engine.parallel.threads",
                         static_cast<double>(options_.engine.num_threads));
    }
    for (const auto& component : graph.topological_components()) {
      // Ensure relations exist for every member up front.
      for (const PredicateId& pred : component) scratch_->GetOrCreate(pred);
      bool recursive = graph.IsRecursive(component[0]);
      if (!recursive) {
        LDL_RETURN_NOT_OK(Parallel() ? EvaluateOnceParallel(component[0])
                                     : EvaluateOnce(component[0]));
      } else if (method_ == RecursionMethod::kNaive) {
        LDL_RETURN_NOT_OK(Parallel()
                              ? EvaluateCliqueNaiveParallel(component, graph)
                              : EvaluateCliqueNaive(component, graph));
      } else {
        LDL_RETURN_NOT_OK(
            Parallel() ? EvaluateCliqueSemiNaiveParallel(component, graph)
                       : EvaluateCliqueSemiNaive(component, graph));
      }
    }
    return Status::OK();
  }

 private:
  Relation* Resolve(const Literal& lit) {
    const PredicateId pred = lit.predicate();
    if (program_.IsDerived(pred)) return scratch_->GetOrCreate(pred);
    return base_->Find(pred);
  }

  RelationResolver MakeResolver() {
    return [this](const Literal& lit, size_t) { return Resolve(lit); };
  }

  RuleEvalOptions OptionsForRule(size_t rule_index) const {
    RuleEvalOptions opts;
    opts.max_derivations = options_.max_derivations;
    opts.cancel = options_.trace.cancel;
    opts.accountant = options_.trace.accountant;
    auto it = options_.rule_orders.find(rule_index);
    if (it != options_.rule_orders.end()) opts.order = it->second;
    return opts;
  }

  /// Transient per-round relations (deltas, rule temporaries) count against
  /// the query's byte budget too — they are where a blow-up shows up first.
  void Attach(Relation* rel) const {
    if (options_.trace.accountant != nullptr) {
      rel->set_accountant(options_.trace.accountant);
    }
  }

  /// Per-round check-point: polls cancellation/deadline/budget and charges
  /// the round into the accountant.
  Status RoundCheckpoint() {
    if (options_.trace.accountant != nullptr) {
      options_.trace.accountant->AddFixpointRounds(1);
    }
    return options_.trace.CheckCancel();
  }

  /// The method name to stamp on recorded iterations: the caller's label
  /// (e.g. "magic" for a rewritten program running semi-naive) when given,
  /// else the raw fixpoint discipline.
  std::string_view MethodLabel(std::string_view discipline) const {
    return options_.method_label.empty()
               ? discipline
               : std::string_view(options_.method_label);
  }

  void RecordIteration(const PredicateId& clique_rep,
                       std::string_view method, size_t round, size_t delta,
                       size_t derivations, double wall_ms) {
    FixpointIteration it;
    it.clique = clique_rep.ToString();
    it.method = std::string(method);
    it.iteration = round;
    it.delta_tuples = delta;
    it.derivations = derivations;
    it.wall_ms = wall_ms;
    stats_->per_iteration.push_back(std::move(it));
    if (options_.trace.metrics != nullptr) {
      options_.trace.Observe(StrCat("engine.fixpoint.iteration_ms.", method),
                             wall_ms);
    }
  }

  // Non-recursive predicate: fire each of its rules once.
  Status EvaluateOnce(const PredicateId& pred) {
    Span span = options_.trace.StartSpan("eval-once", "engine");
    if (span.active()) span.AddArg("predicate", pred.ToString());
    LDL_RETURN_NOT_OK(options_.trace.CheckCancel());
    Relation* out = scratch_->GetOrCreate(pred);
    RelationResolver resolve = MakeResolver();
    for (size_t rule_index : program_.RulesFor(pred)) {
      auto n = EvaluateRule(program_.rules()[rule_index], resolve, out,
                            &stats_->counters, OptionsForRule(rule_index));
      LDL_RETURN_NOT_OK(n.status());
    }
    return Status::OK();
  }

  // Naive fixpoint: every round re-fires every rule of the clique against
  // the full current relations, until a round adds nothing.
  Status EvaluateCliqueNaive(const std::vector<PredicateId>& members,
                             const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "naive");
    }
    RelationResolver resolve = MakeResolver();
    std::vector<size_t> all_rules = clique.exit_rules;
    all_rules.insert(all_rules.end(), clique.recursive_rules.begin(),
                     clique.recursive_rules.end());
    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("naive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }
      // Round-based: evaluate all rules into per-predicate temporaries,
      // then merge, so each round sees exactly the previous round's state.
      std::unordered_map<PredicateId, Relation, PredicateIdHash> temp;
      for (const PredicateId& pred : members) {
        Attach(&temp.emplace(pred, Relation(pred.name, pred.arity))
                    .first->second);
      }
      for (size_t rule_index : all_rules) {
        const Rule& rule = program_.rules()[rule_index];
        auto n = EvaluateRule(rule, resolve, &temp.at(rule.head().predicate()),
                              &stats_->counters, OptionsForRule(rule_index));
        LDL_RETURN_NOT_OK(n.status());
      }
      size_t added = 0;
      for (const PredicateId& pred : members) {
        added += scratch_->GetOrCreate(pred)->InsertAll(temp.at(pred));
      }
      options_.trace.Count("engine.fixpoint.rounds");
      options_.trace.Observe("engine.fixpoint.delta_tuples",
                             static_cast<double>(added));
      if (options_.record_iterations) {
        // Every naive round does full-rule work, including the final
        // added == 0 convergence round — record them all.
        RecordIteration(members[0], MethodLabel("naive"), round, added,
                        stats_->counters.derivations - deriv_before,
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - round_start)
                            .count());
      }
      if (added == 0) break;
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  // Semi-naive fixpoint: exit rules once; then each round fires each
  // recursive rule once per occurrence of a clique predicate in its body,
  // with that occurrence reading the previous round's delta.
  Status EvaluateCliqueSemiNaive(const std::vector<PredicateId>& members,
                                 const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "seminaive");
    }

    auto in_clique = [&clique](const Literal& lit) {
      return !lit.IsBuiltin() && !lit.negated() &&
             clique.Contains(lit.predicate());
    };

    std::unordered_map<PredicateId, Relation, PredicateIdHash> delta;
    for (const PredicateId& pred : members) {
      Attach(&delta.emplace(pred, Relation(pred.name, pred.arity))
                  .first->second);
    }

    // Seed with the exit rules.
    RelationResolver resolve = MakeResolver();
    for (size_t rule_index : clique.exit_rules) {
      const Rule& rule = program_.rules()[rule_index];
      Relation temp(rule.head().predicate().name, rule.head().arity());
      Attach(&temp);
      auto n = EvaluateRule(rule, resolve, &temp, &stats_->counters,
                            OptionsForRule(rule_index));
      LDL_RETURN_NOT_OK(n.status());
      Relation* full = scratch_->GetOrCreate(rule.head().predicate());
      Relation& d = delta.at(rule.head().predicate());
      for (const Tuple& t : temp.tuples()) {
        if (full->Insert(t)) d.Insert(t);
      }
    }

    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("seminaive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      bool any_delta = std::any_of(
          members.begin(), members.end(),
          [&delta](const PredicateId& p) { return !delta.at(p).empty(); });
      if (!any_delta) break;
      // Work rounds only: the final empty-delta round breaks above without
      // firing a rule, so per_iteration holds iterations - 1 entries.
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }

      std::unordered_map<PredicateId, Relation, PredicateIdHash> new_delta;
      for (const PredicateId& pred : members) {
        Attach(&new_delta.emplace(pred, Relation(pred.name, pred.arity))
                    .first->second);
      }

      for (size_t rule_index : clique.recursive_rules) {
        const Rule& rule = program_.rules()[rule_index];
        // One differentiated firing per clique-predicate occurrence.
        for (size_t occ = 0; occ < rule.body().size(); ++occ) {
          if (!in_clique(rule.body()[occ])) continue;
          RelationResolver diff_resolve =
              [this, &delta, &in_clique, occ](const Literal& lit,
                                              size_t body_pos) -> Relation* {
            if (body_pos == occ && in_clique(lit)) {
              return &delta.at(lit.predicate());
            }
            return Resolve(lit);
          };
          Relation temp(rule.head().predicate().name, rule.head().arity());
          Attach(&temp);
          auto n = EvaluateRule(rule, diff_resolve, &temp, &stats_->counters,
                                OptionsForRule(rule_index));
          LDL_RETURN_NOT_OK(n.status());
          Relation* full = scratch_->GetOrCreate(rule.head().predicate());
          Relation& nd = new_delta.at(rule.head().predicate());
          for (const Tuple& t : temp.tuples()) {
            if (full->Insert(t)) nd.Insert(t);
          }
        }
      }
      delta = std::move(new_delta);
      if (options_.trace.metrics != nullptr || options_.record_iterations) {
        size_t added = 0;
        for (const PredicateId& pred : members) added += delta.at(pred).size();
        options_.trace.Count("engine.fixpoint.rounds");
        options_.trace.Observe("engine.fixpoint.delta_tuples",
                               static_cast<double>(added));
        if (options_.record_iterations) {
          RecordIteration(members[0], MethodLabel("seminaive"), round, added,
                          stats_->counters.derivations - deriv_before,
                          std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - round_start)
                              .count());
        }
      }
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  // ---------------------------------------------------------------------
  // Parallel paths (EngineOptions::num_threads > 1). One fixpoint round =
  // fan out hash-partitioned tasks over frozen relations, barrier, then a
  // deterministic sharded merge. Workers only read shared state and write
  // private TupleBatches; every shared-state mutation (index preparation,
  // relation creation, the merge commit) happens on the coordinator between
  // barriers. Determinism: each task is a pure function of frozen inputs,
  // results are folded in task order, and the merge commits shards in shard
  // order — so answers, counters, and failure statuses are independent of
  // the worker schedule.
  // ---------------------------------------------------------------------

  static constexpr size_t kNoPartition = static_cast<size_t>(-1);

  /// One unit of parallel work: fire `rule_index` once with body position
  /// `occ` reading the partition `part` instead of the full relation
  /// (kNoPartition = fire against full relations only). Output and counters
  /// are task-private until harvested.
  struct ParTask {
    size_t rule_index = 0;
    size_t occ = kNoPartition;
    Relation* part = nullptr;
    TupleBatch batch;
    EvalCounters counters;
    Status status = Status::OK();
    double wall_ms = 0;
  };

  bool Parallel() const { return options_.engine.num_threads > 1; }

  WorkerPool* Pool() {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<WorkerPool>(options_.engine.num_threads);
    }
    return pool_.get();
  }

  /// Read-only resolver for worker tasks: never creates relations (that
  /// would mutate the scratch database under concurrent readers). Every
  /// derived predicate reachable here was created by an earlier component
  /// or the coordinator's per-component pre-pass.
  Relation* ResolveFrozen(const Literal& lit) {
    const PredicateId pred = lit.predicate();
    if (program_.IsDerived(pred)) return scratch_->Find(pred);
    return base_->Find(pred);
  }

  /// Derivation budget left for the next fan-out, so per-task caps add up
  /// to the same cumulative limit the sequential engine enforces.
  size_t RemainingDerivations() const {
    return options_.max_derivations > stats_->counters.derivations
               ? options_.max_derivations - stats_->counters.derivations
               : 0;
  }

  /// Runs every task across the pool and blocks until all complete.
  void RunTasks(std::vector<ParTask>* tasks, size_t max_derivations) {
    const bool timing = options_.trace.metrics != nullptr;
    const auto& hook = options_.engine.test_yield_hook;
    Pool()->Run(tasks->size(), [&](size_t index, size_t worker) {
      if (hook) hook(worker);
      ParTask& t = (*tasks)[index];
      std::chrono::steady_clock::time_point start;
      if (timing) start = std::chrono::steady_clock::now();
      const Rule& rule = program_.rules()[t.rule_index];
      t.batch = TupleBatch(rule.head().arity());
      RuleEvalOptions opts = OptionsForRule(t.rule_index);
      opts.concurrent_reads = true;
      opts.max_derivations = max_derivations;
      RelationResolver resolve = [this, &t](const Literal& lit,
                                            size_t body_pos) -> Relation* {
        if (body_pos == t.occ) return t.part;
        return ResolveFrozen(lit);
      };
      auto n = EvaluateRule(rule, resolve, &t.batch, &t.counters, opts);
      t.status = n.status();
      if (timing) {
        t.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      }
      if (hook) hook(worker);
    });
  }

  /// Folds per-task counters and statuses in task order (schedule
  /// independent; the lowest-index failure wins) and re-checks the
  /// cumulative derivation cap across the whole fan-out.
  Status HarvestTasks(const std::vector<ParTask>& tasks) {
    for (const ParTask& t : tasks) stats_->counters.Add(t.counters);
    if (options_.trace.metrics != nullptr) {
      options_.trace.Count("engine.parallel.tasks", tasks.size());
      for (const ParTask& t : tasks) {
        options_.trace.Observe("engine.parallel.worker_ms", t.wall_ms);
      }
    }
    for (const ParTask& t : tasks) {
      LDL_RETURN_NOT_OK(t.status);
    }
    if (stats_->counters.derivations > options_.max_derivations) {
      return Status::ResourceExhausted(
          StrCat("parallel round exceeded ", options_.max_derivations,
                 " derivations"));
    }
    return Status::OK();
  }

  /// Coordinator-side index preparation: builds every index the tasks are
  /// predicted to probe, so workers can stay on the const lookup path. A
  /// missed prediction only costs a scan inside the task.
  void PrepareTaskIndexes(std::vector<ParTask>* tasks) {
    std::map<size_t, std::vector<std::pair<size_t, std::vector<int>>>> cache;
    for (ParTask& t : *tasks) {
      auto [it, fresh] = cache.try_emplace(t.rule_index);
      const Rule& rule = program_.rules()[t.rule_index];
      if (fresh) {
        std::vector<size_t> order;
        auto oit = options_.rule_orders.find(t.rule_index);
        if (oit != options_.rule_orders.end()) order = oit->second;
        it->second = PredictBoundCols(rule, order);
        for (const auto& [body_pos, cols] : it->second) {
          Relation* rel = ResolveFrozen(rule.body()[body_pos]);
          if (rel != nullptr) rel->PrepareIndex(cols);
        }
      }
      if (t.part != nullptr) {
        for (const auto& [body_pos, cols] : it->second) {
          if (body_pos == t.occ) t.part->PrepareIndex(cols);
        }
      }
    }
  }

  /// The round barrier: merges task batches into the global relations, per
  /// head predicate in `preds` order. Phase 1 fans the per-shard dedup
  /// filter (against the frozen full relation) across the pool; phase 2
  /// commits shards in order into full and, when given, the round's new
  /// delta. Returns tuples added.
  size_t MergeBatches(
      std::vector<ParTask>& tasks, const std::vector<PredicateId>& preds,
      std::unordered_map<PredicateId, Relation, PredicateIdHash>* new_delta) {
    const bool timing = options_.trace.metrics != nullptr;
    std::chrono::steady_clock::time_point start;
    if (timing) start = std::chrono::steady_clock::now();
    std::unordered_map<PredicateId, std::vector<const TupleBatch*>,
                       PredicateIdHash>
        by_pred;
    uint64_t batch_bytes = 0;
    for (ParTask& t : tasks) {
      if (t.batch.empty()) continue;
      by_pred[program_.rules()[t.rule_index].head().predicate()].push_back(
          &t.batch);
      batch_bytes += t.batch.ApproxBytes();
    }
    // The thread-local batches are real memory: keep them charged for the
    // span of the merge so budget enforcement sees the parallel peak.
    if (options_.trace.accountant != nullptr && batch_bytes != 0) {
      options_.trace.accountant->AddBytes(batch_bytes);
    }
    size_t added = 0;
    const auto& hook = options_.engine.test_yield_hook;
    for (const PredicateId& pred : preds) {
      auto it = by_pred.find(pred);
      if (it == by_pred.end()) continue;
      Relation* full = scratch_->GetOrCreate(pred);
      ShardedMerger merger(options_.engine.num_threads);
      Pool()->Run(merger.num_shards(), [&](size_t shard, size_t worker) {
        if (hook) hook(worker);
        merger.CollectShard(shard, it->second, *full);
      });
      added += merger.Commit(
          full, new_delta == nullptr ? nullptr : &new_delta->at(pred));
    }
    if (options_.trace.accountant != nullptr && batch_bytes != 0) {
      options_.trace.accountant->ReleaseBytes(batch_bytes);
    }
    if (timing) {
      options_.trace.Observe("engine.parallel.merge_ms",
                             std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    }
    return added;
  }

  /// Builds tasks for firing `rule_index` once against frozen relations:
  /// partitions the first positive body literal whose relation is large
  /// enough, else emits one unpartitioned task. Splitting any single
  /// positive literal is sound — the body is a conjunction, so the firing
  /// is additive over a disjoint split of one input.
  void AddOnceTasks(size_t rule_index, std::vector<ParTask>* tasks,
                    std::deque<std::vector<Relation>>* part_store) {
    const Rule& rule = program_.rules()[rule_index];
    size_t occ = kNoPartition;
    Relation* rel = nullptr;
    for (size_t i = 0; i < rule.body().size(); ++i) {
      const Literal& lit = rule.body()[i];
      if (lit.IsBuiltin() || lit.negated()) continue;
      Relation* r = ResolveFrozen(lit);
      if (r != nullptr && r->size() >= options_.engine.min_partition_tuples) {
        occ = i;
        rel = r;
        break;
      }
    }
    if (occ == kNoPartition) {
      ParTask t;
      t.rule_index = rule_index;
      tasks->push_back(std::move(t));
      return;
    }
    part_store->push_back(
        HashPartitionRelation(*rel, options_.engine.num_threads));
    for (Relation& part : part_store->back()) {
      if (part.empty()) continue;
      ParTask t;
      t.rule_index = rule_index;
      t.occ = occ;
      t.part = &part;
      tasks->push_back(std::move(t));
    }
  }

  // Non-recursive predicate, parallel: rules of a non-recursive predicate
  // never read their own output (that would make it recursive), so all
  // firings are independent and merge through the shared barrier.
  Status EvaluateOnceParallel(const PredicateId& pred) {
    Span span = options_.trace.StartSpan("eval-once", "engine");
    if (span.active()) {
      span.AddArg("predicate", pred.ToString());
      span.AddArg("threads", std::to_string(options_.engine.num_threads));
    }
    LDL_RETURN_NOT_OK(options_.trace.CheckCancel());
    scratch_->GetOrCreate(pred);
    std::deque<std::vector<Relation>> part_store;
    std::vector<ParTask> tasks;
    for (size_t rule_index : program_.RulesFor(pred)) {
      AddOnceTasks(rule_index, &tasks, &part_store);
    }
    PrepareTaskIndexes(&tasks);
    RunTasks(&tasks, RemainingDerivations());
    LDL_RETURN_NOT_OK(HarvestTasks(tasks));
    MergeBatches(tasks, {pred}, nullptr);
    return Status::OK();
  }

  // Naive fixpoint, parallel. Sequential naive already has round-snapshot
  // semantics (rules derive into per-round temporaries), so the parallel
  // version follows the exact same round trajectory.
  Status EvaluateCliqueNaiveParallel(const std::vector<PredicateId>& members,
                                     const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "naive");
      span.AddArg("threads", std::to_string(options_.engine.num_threads));
    }
    std::vector<size_t> all_rules = clique.exit_rules;
    all_rules.insert(all_rules.end(), clique.recursive_rules.begin(),
                     clique.recursive_rules.end());
    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("naive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }
      std::deque<std::vector<Relation>> part_store;
      std::vector<ParTask> tasks;
      for (size_t rule_index : all_rules) {
        AddOnceTasks(rule_index, &tasks, &part_store);
      }
      PrepareTaskIndexes(&tasks);
      RunTasks(&tasks, RemainingDerivations());
      LDL_RETURN_NOT_OK(HarvestTasks(tasks));
      size_t added = MergeBatches(tasks, members, nullptr);
      options_.trace.Count("engine.fixpoint.rounds");
      options_.trace.Count("engine.parallel.rounds");
      options_.trace.Observe("engine.fixpoint.delta_tuples",
                             static_cast<double>(added));
      if (options_.record_iterations) {
        RecordIteration(members[0], MethodLabel("naive"), round, added,
                        stats_->counters.derivations - deriv_before,
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - round_start)
                            .count());
      }
      if (added == 0) break;
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  // Semi-naive fixpoint, parallel: each round hash-partitions the deltas,
  // fires one task per (recursive rule, clique occurrence, non-empty
  // partition) against frozen relations, and merges through the sharded
  // barrier. Unlike the sequential loop — whose later firings see tuples
  // inserted by earlier firings of the same round — every task reads the
  // round-start snapshot; such tuples are simply picked up from the next
  // round's delta, so the fixpoint is identical (full ⊇ delta makes the
  // standard semi-naive completeness argument go through unchanged).
  Status EvaluateCliqueSemiNaiveParallel(
      const std::vector<PredicateId>& members, const DependencyGraph& graph) {
    const RecursiveClique& clique =
        graph.cliques()[graph.CliqueIndex(members[0])];
    Span span = options_.trace.StartSpan("fixpoint", "engine");
    if (span.active()) {
      span.AddArg("clique", members[0].ToString());
      span.AddArg("method", "seminaive");
      span.AddArg("threads", std::to_string(options_.engine.num_threads));
    }

    auto in_clique = [&clique](const Literal& lit) {
      return !lit.IsBuiltin() && !lit.negated() &&
             clique.Contains(lit.predicate());
    };

    std::unordered_map<PredicateId, Relation, PredicateIdHash> delta;
    for (const PredicateId& pred : members) {
      Attach(&delta.emplace(pred, Relation(pred.name, pred.arity))
                  .first->second);
    }

    // Seed with the exit rules (no in-clique reads: independent firings).
    {
      std::deque<std::vector<Relation>> part_store;
      std::vector<ParTask> tasks;
      for (size_t rule_index : clique.exit_rules) {
        AddOnceTasks(rule_index, &tasks, &part_store);
      }
      PrepareTaskIndexes(&tasks);
      RunTasks(&tasks, RemainingDerivations());
      LDL_RETURN_NOT_OK(HarvestTasks(tasks));
      MergeBatches(tasks, members, &delta);
    }

    size_t round = 0;
    while (true) {
      if (++round > options_.max_iterations) {
        return Status::ResourceExhausted(
            StrCat("seminaive fixpoint exceeded ", options_.max_iterations,
                   " iterations for ", clique.ToString()));
      }
      stats_->iterations++;
      LDL_RETURN_NOT_OK(RoundCheckpoint());
      bool any_delta = std::any_of(
          members.begin(), members.end(),
          [&delta](const PredicateId& p) { return !delta.at(p).empty(); });
      if (!any_delta) break;
      const size_t deriv_before = stats_->counters.derivations;
      std::chrono::steady_clock::time_point round_start;
      if (options_.record_iterations) {
        round_start = std::chrono::steady_clock::now();
      }

      // Partition this round's deltas by tuple hash. Small rounds stay in
      // one partition: fan-out would cost more than the work.
      size_t total_delta = 0;
      for (const PredicateId& pred : members) {
        total_delta += delta.at(pred).size();
      }
      const size_t parts_per_pred =
          total_delta >= options_.engine.min_partition_tuples
              ? options_.engine.num_threads
              : 1;
      std::unordered_map<PredicateId, std::vector<Relation>, PredicateIdHash>
          parts;
      for (const PredicateId& pred : members) {
        parts.emplace(pred,
                      HashPartitionRelation(delta.at(pred), parts_per_pred));
      }

      std::vector<ParTask> tasks;
      for (size_t rule_index : clique.recursive_rules) {
        const Rule& rule = program_.rules()[rule_index];
        for (size_t occ = 0; occ < rule.body().size(); ++occ) {
          if (!in_clique(rule.body()[occ])) continue;
          std::vector<Relation>& pp =
              parts.at(rule.body()[occ].predicate());
          for (Relation& part : pp) {
            if (part.empty()) continue;
            ParTask t;
            t.rule_index = rule_index;
            t.occ = occ;
            t.part = &part;
            tasks.push_back(std::move(t));
          }
        }
      }

      std::unordered_map<PredicateId, Relation, PredicateIdHash> new_delta;
      for (const PredicateId& pred : members) {
        Attach(&new_delta.emplace(pred, Relation(pred.name, pred.arity))
                    .first->second);
      }

      PrepareTaskIndexes(&tasks);
      RunTasks(&tasks, RemainingDerivations());
      LDL_RETURN_NOT_OK(HarvestTasks(tasks));
      size_t added = MergeBatches(tasks, members, &new_delta);
      delta = std::move(new_delta);
      options_.trace.Count("engine.fixpoint.rounds");
      options_.trace.Count("engine.parallel.rounds");
      options_.trace.Observe("engine.fixpoint.delta_tuples",
                             static_cast<double>(added));
      if (options_.record_iterations) {
        RecordIteration(members[0], MethodLabel("seminaive"), round, added,
                        stats_->counters.derivations - deriv_before,
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - round_start)
                            .count());
      }
    }
    if (span.active()) span.AddArg("rounds", std::to_string(round));
    return Status::OK();
  }

  const Program& program_;
  RecursionMethod method_;
  Database* base_;
  Database* scratch_;
  FixpointStats* stats_;
  const FixpointOptions& options_;
  std::unique_ptr<WorkerPool> pool_;  ///< created lazily when num_threads > 1
};

}  // namespace

Status EvaluateProgram(const Program& program, RecursionMethod method,
                       Database* base, Database* scratch,
                       FixpointStats* stats, const FixpointOptions& options) {
  if (method != RecursionMethod::kNaive &&
      method != RecursionMethod::kSemiNaive) {
    return Status::InvalidArgument(
        StrCat("EvaluateProgram supports naive/seminaive, got ",
               RecursionMethodToString(method),
               " (use MagicRewrite/CountingRewrite first)"));
  }
  FixpointStats local;
  ProgramEvaluator evaluator(program, method, base, scratch, &local, options);
  Status st = evaluator.Run();
  local.ExportTo(options.trace.metrics);
  if (stats != nullptr) {
    stats->iterations += local.iterations;
    stats->counters.Add(local.counters);
    for (FixpointIteration& it : local.per_iteration) {
      stats->per_iteration.push_back(std::move(it));
    }
  }
  return st;
}

}  // namespace ldl
