#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "storage/database.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

/// All optimizer tests run with plan verification on: every safe plan the
/// search produces is materialized into a processing tree and checked
/// against the §4/§5 structural invariants (src/analysis/plan_verifier.h).
OptimizerOptions Verifying(OptimizerOptions options = {}) {
  options.verify_plans = true;
  return options;
}

constexpr const char* kSgRules = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

Statistics SgStats(double nodes) {
  Statistics stats;
  stats.Set({"up", 2}, {nodes, {nodes, nodes / 3}});
  stats.Set({"dn", 2}, {nodes, {nodes / 3, nodes}});
  stats.Set({"flat", 2}, {nodes / 10, {nodes / 10, nodes / 10}});
  return stats;
}

TEST(OptimizerTest, NonRecursiveReordersBySelectivity) {
  Program p = P("q(X, Z) <- huge(X, Y), tiny(Y, Z).");
  Statistics stats;
  stats.Set({"huge", 2}, {100000.0, {100000.0, 300.0}});
  stats.Set({"tiny", 2}, {10.0, {10.0, 10.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("q(X, Z)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe);
  // tiny must come first under an all-free query.
  ASSERT_EQ(plan->rule_orders.count(0), 1u);
  EXPECT_EQ(plan->rule_orders.at(0), (std::vector<size_t>{1, 0}));
}

TEST(OptimizerTest, QuerySpecificPlans) {
  // The paper's central point (section 2): p(c, Y) and p(X, Y) get
  // different plans.
  Program p = P("q(X, Z) <- big1(X, Y), big2(Y, Z).");
  Statistics stats;
  stats.Set({"big1", 2}, {50000.0, {5000.0, 100.0}});
  stats.Set({"big2", 2}, {40000.0, {100.0, 4000.0}});
  Optimizer opt_free(p, stats, Verifying());
  Optimizer opt_bound(p, stats, Verifying());
  auto free_plan = opt_free.Optimize(L("q(X, Z)"));
  auto bound_plan = opt_bound.Optimize(L("q(1, Z)"));
  ASSERT_TRUE(free_plan.ok() && bound_plan.ok());
  // Bound query must be strictly cheaper.
  EXPECT_LT(bound_plan->TotalCost(), free_plan->TotalCost());
  EXPECT_EQ(bound_plan->adornment.ToString(), "bf");
  EXPECT_EQ(free_plan->adornment.ToString(), "ff");
  // Bound query starts from the bound big1 (probe on X).
  EXPECT_EQ(bound_plan->rule_orders.at(0).front(), 0u);
}

TEST(OptimizerTest, BoundRecursiveQueryPicksMagicOrCounting) {
  Program p = P(kSgRules);
  Statistics stats = SgStats(10000.0);
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("sg(5, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe);
  EXPECT_TRUE(plan->top_method == RecursionMethod::kMagic ||
              plan->top_method == RecursionMethod::kCounting)
      << RecursionMethodToString(plan->top_method);
}

TEST(OptimizerTest, FreeRecursiveQueryPicksSemiNaive) {
  Program p = P(kSgRules);
  Statistics stats = SgStats(10000.0);
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("sg(X, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe);
  EXPECT_EQ(plan->top_method, RecursionMethod::kSemiNaive);
}

TEST(OptimizerTest, CountingPreferredOverMagicWhenApplicable) {
  Program p = P(kSgRules);
  Statistics stats = SgStats(10000.0);
  OptimizerOptions with_counting;
  OptimizerOptions without_counting;
  without_counting.enable_counting = false;
  Optimizer opt1(p, stats, Verifying(with_counting));
  Optimizer opt2(p, stats, Verifying(without_counting));
  auto plan1 = opt1.Optimize(L("sg(5, Y)"));
  auto plan2 = opt2.Optimize(L("sg(5, Y)"));
  ASSERT_TRUE(plan1.ok() && plan2.ok());
  EXPECT_EQ(plan1->top_method, RecursionMethod::kCounting);
  EXPECT_EQ(plan2->top_method, RecursionMethod::kMagic);
  EXPECT_LE(plan1->TotalCost(), plan2->TotalCost());
}

TEST(OptimizerTest, NonLinearCliqueSkipsCounting) {
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- tc(X, Z), tc(Z, Y).
  )");
  Statistics stats;
  stats.Set({"edge", 2}, {1000.0, {500.0, 500.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("tc(1, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe);
  EXPECT_NE(plan->top_method, RecursionMethod::kCounting);
}

TEST(OptimizerTest, MemoizationOptimizesEachBindingOnce) {
  // c references a twice under the same binding: the OR subtree for a must
  // be optimized once (Figure 7-1's "exactly ONCE for each binding").
  Program p = P(R"(
    a(X, Y) <- base1(X, Y).
    b(X, Y) <- a(X, Y), base2(Y).
    c(X) <- a(X, Y), b(X, Z).
  )");
  Statistics stats;
  stats.Set({"base1", 2}, {1000.0, {100.0, 100.0}});
  stats.Set({"base2", 1}, {50.0, {50.0}});

  OptimizerOptions memo_on;
  Optimizer opt(p, stats, Verifying(memo_on));
  auto plan = opt.Optimize(L("c(X)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT(plan->search_stats.memo_hits, 0u);

  OptimizerOptions memo_off;
  memo_off.memoize = false;
  Optimizer opt2(p, stats, Verifying(memo_off));
  auto plan2 = opt2.Optimize(L("c(X)"));
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  // Same plan quality, more work.
  EXPECT_NEAR(plan->TotalCost(), plan2->TotalCost(),
              1e-9 * plan->TotalCost());
  EXPECT_GT(plan2->search_stats.subplans_optimized,
            plan->search_stats.subplans_optimized);
}

TEST(OptimizerTest, SearchStatsResetBetweenOptimizeCalls) {
  // One long-lived Optimizer (NR-OPT keeps its memo across queries), two
  // Optimize calls: each call's search_stats must describe that call only.
  // A fully memoized repeat reports zero fresh work, not the first call's
  // totals accumulated twice.
  Program p = P("q(X, Z) <- r1(X, Y), r2(Y, Z).");
  Statistics stats;
  stats.Set({"r1", 2}, {1000.0, {500.0, 200.0}});
  stats.Set({"r2", 2}, {50.0, {50.0, 50.0}});
  Optimizer opt(p, stats, {});
  ASSERT_TRUE(opt.Optimize(L("q(1, Z)")).ok());
  const PlanSearchStats first = opt.search_stats();
  EXPECT_GT(first.subplans_optimized, 0u);
  EXPECT_GT(first.cost_evaluations, 0u);

  auto repeat = opt.Optimize(L("q(1, Z)"));
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  const PlanSearchStats second = opt.search_stats();
  EXPECT_EQ(second.subplans_optimized, 0u);
  EXPECT_EQ(second.memo_misses, 0u);
  EXPECT_EQ(second.cost_evaluations, 0u);
  EXPECT_GT(second.memo_hits, 0u);  // the goal itself answers from memo
}

TEST(OptimizerTest, UnsafeQueryGetsInfiniteCostAndDiagnostic) {
  Program p = P("bigger(X, Y) <- X > Y.");
  Statistics stats;
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("bigger(X, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->safe);
  EXPECT_FALSE(plan->unsafe_reason.empty());
  EXPECT_EQ(plan->TotalCost(), kInfiniteCost);
}

TEST(OptimizerTest, BoundQueryOnComparisonRuleIsSafe) {
  // Same rule, fully bound query form: now computable.
  Program p = P("bigger(X, Y) <- X > Y.");
  Statistics stats;
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("bigger(4, 2)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->safe) << plan->unsafe_reason;
}

TEST(OptimizerTest, ReorderingRescuesSafety) {
  // Textual order is unsafe (Y = X + 1 before r binds X); the optimizer
  // must find the safe permutation rather than reject.
  Program p = P("q(Y) <- Y = X + 1, r(X).");
  Statistics stats;
  stats.Set({"r", 1}, {100.0, {100.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("q(Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe) << plan->unsafe_reason;
  EXPECT_EQ(plan->rule_orders.at(0), (std::vector<size_t>{1, 0}));
}

TEST(OptimizerTest, ArithmeticRecursionRejectedAsUnsafe) {
  Program p = P(R"(
    nat(X) <- zero(X).
    nat(Y) <- nat(X), Y = X + 1.
  )");
  Statistics stats;
  stats.Set({"zero", 1}, {1.0, {1.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("nat(X)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->safe);
  EXPECT_NE(plan->unsafe_reason.find("well-founded"), std::string::npos)
      << plan->unsafe_reason;
}

TEST(OptimizerTest, ListConsumingRecursionIsSafeWhenBound) {
  Program p = P(R"(
    member(X, [X | T]).
    member(X, [H | T]) <- member(X, T).
  )");
  Statistics stats;
  Optimizer opt(p, stats, Verifying());
  // member(X, [1,2,3])?: bound second argument decreases structurally.
  auto bound_plan = opt.Optimize(L("member(X, [1, 2, 3])"));
  ASSERT_TRUE(bound_plan.ok()) << bound_plan.status();
  EXPECT_TRUE(bound_plan->safe) << bound_plan->unsafe_reason;
  // member(X, T)? builds ever-larger lists bottom-up: unsafe.
  Optimizer opt2(p, stats, Verifying());
  auto free_plan = opt2.Optimize(L("member(X, T)"));
  ASSERT_TRUE(free_plan.ok()) << free_plan.status();
  EXPECT_FALSE(free_plan->safe);
}

TEST(OptimizerTest, StrategiesAgreeOnSmallPrograms) {
  Program p = P(R"(
    q(X, W) <- r1(X, Y), r2(Y, Z), r3(Z, W).
  )");
  Statistics stats;
  stats.Set({"r1", 2}, {5000.0, {500.0, 100.0}});
  stats.Set({"r2", 2}, {100.0, {100.0, 80.0}});
  stats.Set({"r3", 2}, {20000.0, {80.0, 20000.0}});
  double best_cost = 0;
  for (auto strategy :
       {SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming}) {
    OptimizerOptions options;
    options.strategy = strategy;
    Optimizer opt(p, stats, Verifying(options));
    auto plan = opt.Optimize(L("q(1, W)"));
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_TRUE(plan->safe);
    if (best_cost == 0) {
      best_cost = plan->TotalCost();
    } else {
      EXPECT_NEAR(plan->TotalCost(), best_cost, 1e-6 * best_cost);
    }
  }
}

TEST(OptimizerTest, LexicographicBaselineIsNoBetterThanExhaustive) {
  Program p = P("q(X, Z) <- huge(X, Y), tiny(Y, Z).");
  Statistics stats;
  stats.Set({"huge", 2}, {100000.0, {100000.0, 300.0}});
  stats.Set({"tiny", 2}, {10.0, {10.0, 10.0}});
  OptimizerOptions lex;
  lex.strategy = SearchStrategy::kLexicographic;
  Optimizer opt_lex(p, stats, Verifying(lex));
  Optimizer opt_ex(p, stats, Verifying());
  auto plan_lex = opt_lex.Optimize(L("q(X, Z)"));
  auto plan_ex = opt_ex.Optimize(L("q(X, Z)"));
  ASSERT_TRUE(plan_lex.ok() && plan_ex.ok());
  EXPECT_GT(plan_lex->TotalCost(), plan_ex->TotalCost());
}

TEST(OptimizerTest, ExplainMentionsMethodAndOrders) {
  Program p = P(kSgRules);
  Statistics stats = SgStats(1000.0);
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("sg(5, Y)"));
  ASSERT_TRUE(plan.ok());
  std::string text = plan->Explain(p);
  EXPECT_NE(text.find("QUERY"), std::string::npos);
  EXPECT_NE(text.find("CLIQUE"), std::string::npos);
  EXPECT_NE(text.find("RULE"), std::string::npos);
}

TEST(OptimizerTest, DeeperRecursionAssumptionRaisesCost) {
  Program p = P(kSgRules);
  Statistics stats = SgStats(10000.0);
  OptimizerOptions shallow, deep;
  shallow.cost.assumed_recursion_depth = 4;
  deep.cost.assumed_recursion_depth = 16;
  Optimizer opt1(p, stats, Verifying(shallow));
  Optimizer opt2(p, stats, Verifying(deep));
  auto plan1 = opt1.Optimize(L("sg(X, Y)"));
  auto plan2 = opt2.Optimize(L("sg(X, Y)"));
  ASSERT_TRUE(plan1.ok() && plan2.ok());
  EXPECT_LE(plan1->TotalCost(), plan2->TotalCost());
}

TEST(OptimizerTest, MutualRecursionEndToEnd) {
  Program p = P(R"(
    even(X) <- zero(X).
    even(X) <- succ(Y, X), odd(Y).
    odd(X) <- succ(Y, X), even(Y).
  )");
  Statistics stats;
  stats.Set({"zero", 1}, {1.0, {1.0}});
  stats.Set({"succ", 2}, {100.0, {100.0, 100.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("even(40)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe) << plan->unsafe_reason;
  // Mutual cliques are not counting-applicable; magic or seminaive only.
  EXPECT_NE(plan->top_method, RecursionMethod::kCounting);
  // Orders chosen for all three rules.
  EXPECT_EQ(plan->rule_orders.size(), 3u);
}

TEST(OptimizerTest, CliqueBelowNonRecursivePredicate) {
  // A nonrecursive wrapper over a recursive clique: NR-OPT and OPT compose.
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Z), tc(Z, Y).
    related(X, Y) <- tc(X, Y), label(Y).
  )");
  Statistics stats;
  stats.Set({"edge", 2}, {5000.0, {1000.0, 1000.0}});
  stats.Set({"label", 1}, {10.0, {10.0}});
  Optimizer opt(p, stats, Verifying());
  auto plan = opt.Optimize(L("related(3, Y)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->safe);
  // The clique decision is recorded even though the goal is nonrecursive.
  EXPECT_EQ(plan->clique_methods.size(), 1u);
  EXPECT_GT(plan->TotalCost(), 0.0);
}

}  // namespace
}  // namespace ldl
