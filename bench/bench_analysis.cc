// Experiment E14 — what semantic pre-optimization buys the optimizer:
//
//   (a) adornment-reachability pruning: with a bound goal over a layered
//       join program, most all-free adornments can never be requested at
//       run time, so NR-OPT should not spend memo entries or cost
//       evaluations on them;
//   (b) dead-rule elimination: rules that are unreachable, statically
//       unsatisfiable, or subsumed shrink the program before the search
//       even starts;
//   (c) the analysis itself must be cheap relative to the optimization it
//       feeds (dataflow visits scale with predicates, not with the
//       adornment lattice).

#include <benchmark/benchmark.h>

#include "analysis/analyzer.h"
#include "ast/parser.h"
#include "base/strings.h"
#include "bench_util.h"
#include "ldl/ldl.h"
#include "obs/search_trace.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

/// Layered join pyramid over one EDB relation: `layers` derived layers of
/// `width` predicates, each joining two predicates of the layer below.
/// With a bound goal at the apex, sideways information passing keeps the
/// first argument bound all the way down — all-free adornments of the
/// derived predicates are statically unreachable.
std::string LayeredText(size_t layers, size_t width) {
  std::string text = "e(1, 2).  e(2, 3).  e(3, 4).  e(4, 5).\n";
  for (size_t l = 1; l <= layers; ++l) {
    for (size_t p = 0; p < width; ++p) {
      auto below = [&](size_t q) {
        return l == 1 ? std::string("e")
                      : StrCat("p", l - 1, "_", q % width);
      };
      text += StrCat("p", l, "_", p, "(X, Z) <- ", below(p), "(X, Y), ",
                     below(p + 1), "(Y, Z).\n");
    }
  }
  return text;
}

/// The layered program plus `dead` rules of each flavor the analyzer can
/// retire: unreachable from the goal, statically unsatisfiable, subsumed.
std::string WithDeadRules(size_t layers, size_t width, size_t dead) {
  std::string text = LayeredText(layers, width);
  for (size_t d = 0; d < dead; ++d) {
    text += StrCat("zz_orphan", d, "(X, Y) <- e(X, Y).\n");
    text += StrCat("p1_0(X, Z) <- e(X, Z), X = zz_sym", d, ".\n");
    text += StrCat("p1_0(X, Z) <- e(X, Z), e(Z, X).\n");
  }
  return text;
}

struct OptRun {
  size_t memo = 0;
  size_t pruned = 0;
  size_t subplans = 0;
  size_t cost_evals = 0;
  double ms = 0;
};

OptRun RunOptimize(const std::string& text, const std::string& goal,
                   bool analyze) {
  SearchTracer tracer;
  OptimizerOptions options;
  options.analyze_reachability = analyze;
  options.eliminate_dead_rules = analyze;
  options.trace.search = &tracer;
  LdlSystem sys(options);
  auto load = sys.LoadProgram(text);
  if (!load.ok()) return {};
  Stopwatch watch;
  auto plan = sys.Plan(goal);
  OptRun run;
  run.ms = watch.ElapsedMs();
  if (!plan.ok()) return run;
  run.memo = tracer.memo().size();
  run.subplans = plan->search_stats.subplans_optimized;
  run.cost_evals = plan->search_stats.cost_evaluations;
  for (const auto& candidate : tracer.candidates()) {
    if (candidate.disposition == CandidateDisposition::kPrunedUnreachable) {
      ++run.pruned;
    }
  }
  return run;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E14", "Semantic pre-optimization — reachability pruning "
                       "and dead-rule elimination feeding NR-OPT");

  Table pruning({"layers x width", "analysis", "memo entries", "pruned",
                 "subplans", "cost evals", "ms"});
  for (auto [layers, width] : {std::pair<size_t, size_t>{2, 2},
                               std::pair<size_t, size_t>{3, 2},
                               std::pair<size_t, size_t>{3, 3},
                               std::pair<size_t, size_t>{4, 3}}) {
    std::string text = LayeredText(layers, width);
    std::string goal = StrCat("p", layers, "_0(1, Qz)");
    for (bool analyze : {false, true}) {
      OptRun run = RunOptimize(text, goal, analyze);
      pruning.AddRow({StrCat(layers, " x ", width), analyze ? "on" : "off",
                      std::to_string(run.memo), std::to_string(run.pruned),
                      std::to_string(run.subplans),
                      std::to_string(run.cost_evals), Fmt(run.ms, "%.2f")});
    }
  }
  pruning.Print();
  std::printf(
      "Expected shape: with analysis on, the memo lattice loses every\n"
      "statically unreachable (predicate, adornment) pair and the pruned\n"
      "column is nonzero; plan answers are unchanged (difftest config\n"
      "opt:analysis proves that corpus-wide).\n\n");

  Table dead({"dead sets", "rules", "retired", "analyze ms", "dataflow"});
  for (size_t sets : {0u, 2u, 8u, 32u}) {
    auto parsed = ParseProgram(WithDeadRules(3, 2, sets));
    if (!parsed.ok()) continue;
    ProgramAnalyzer analyzer(*parsed);
    auto goal = ParseLiteral("p3_0(1, Qz)");
    Stopwatch watch;
    ProgramAnalysis analysis = analyzer.Analyze(*goal);
    double ms = watch.ElapsedMs();
    DeadRuleElimination pruned = EliminateDeadRules(*parsed, analysis);
    dead.AddRow({std::to_string(sets),
                 std::to_string(parsed->rules().size()),
                 std::to_string(pruned.removed_rules.size()), Fmt(ms, "%.3f"),
                 StrCat(analysis.type_stats().visits, " visits")});
  }
  dead.Print();
  std::printf(
      "Expected shape: retired rules grow with the injected dead sets\n"
      "(orphan + unsatisfiable + subsumed per set) while analysis time\n"
      "stays in the sub-millisecond range for programs this size.\n\n");
}

namespace {

void BM_AnalyzeLayered(benchmark::State& state) {
  auto program = ParseProgram(LayeredText(4, 3));
  auto goal = ParseLiteral("p4_0(1, Qz)");
  for (auto _ : state) {
    ProgramAnalyzer analyzer(*program);
    benchmark::DoNotOptimize(analyzer.Analyze(*goal));
  }
  state.SetLabel("4x3 pyramid");
}
BENCHMARK(BM_AnalyzeLayered);

void BM_OptimizeWithAnalysis(benchmark::State& state) {
  bool analyze = state.range(0) != 0;
  std::string text = LayeredText(4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOptimize(text, "p4_0(1, Qz)", analyze));
  }
  state.SetLabel(analyze ? "analysis-on" : "analysis-off");
}
BENCHMARK(BM_OptimizeWithAnalysis)->Arg(0)->Arg(1);

void BM_EliminateDeadRules(benchmark::State& state) {
  auto program = ParseProgram(WithDeadRules(3, 2, 8));
  auto goal = ParseLiteral("p3_0(1, Qz)");
  for (auto _ : state) {
    ProgramAnalyzer analyzer(*program);
    ProgramAnalysis analysis = analyzer.Analyze(*goal);
    benchmark::DoNotOptimize(EliminateDeadRules(*program, analysis));
  }
  state.SetLabel("8 dead sets");
}
BENCHMARK(BM_EliminateDeadRules);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("analysis");
  return 0;
}
