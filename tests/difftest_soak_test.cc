// Soak run of the differential harness — labeled `slow` in CMake, excluded
// from `ctest -L tier1`. Broad seed sweep over the full method x strategy
// x annotation matrix; any disagreement is a genuine engine/optimizer bug.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "testing/difftest.h"
#include "testing/program_gen.h"

namespace ldl {
namespace testing {
namespace {

TEST(DiffTestSoakTest, FullMatrixOverManySeeds) {
  DiffTestOptions options;
  options.thread_counts = {1, 2, 4};  // par:N axis rides the soak
  size_t iterations = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    for (int i = 0; i < 60; ++i) {
      GeneratedProgram prog = GenerateProgram(&rng, options.gen);
      DiffOutcome outcome = RunDifferential(prog, options);
      ASSERT_FALSE(outcome.reference_failed)
          << "seed " << seed << " iter " << i << ": " << outcome.detail
          << "\n" << prog.ToLdl();
      ASSERT_FALSE(outcome.failed())
          << "seed " << seed << " iter " << i << " (" << prog.summary
          << "):\n" << outcome.detail << prog.ToLdl();
      ++iterations;
    }
  }
  EXPECT_EQ(iterations, 480u);
}

TEST(DiffTestSoakTest, PerShapeSweeps) {
  for (EdbShape shape : {EdbShape::kChain, EdbShape::kTree, EdbShape::kCycle,
                         EdbShape::kRandom}) {
    DiffTestOptions options;
    options.gen.shape = shape;
    Rng rng(99);
    for (int i = 0; i < 40; ++i) {
      GeneratedProgram prog = GenerateProgram(&rng, options.gen);
      DiffOutcome outcome = RunDifferential(prog, options);
      ASSERT_FALSE(outcome.reference_failed) << outcome.detail;
      ASSERT_FALSE(outcome.failed())
          << EdbShapeToString(shape) << " iter " << i << " ("
          << prog.summary << "):\n" << outcome.detail << prog.ToLdl();
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace ldl
