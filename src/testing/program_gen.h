#ifndef LDLOPT_TESTING_PROGRAM_GEN_H_
#define LDLOPT_TESTING_PROGRAM_GEN_H_

#include <string>
#include <string_view>
#include <vector>

#include "ast/program.h"
#include "base/rng.h"
#include "base/status.h"
#include "storage/database.h"

namespace ldl {
namespace testing {

/// Shape of the random EDB graph backing each generated base relation.
/// chain/tree are acyclic, cycle is deliberately cyclic (it exercises the
/// counting->magic fallback), random draws arbitrary pairs (may be cyclic).
enum class EdbShape {
  kChain,
  kTree,
  kCycle,
  kRandom,
  kMixed,  ///< pick one of the above per relation
};

const char* EdbShapeToString(EdbShape shape);
/// Parses "chain" / "tree" / "cycle" / "random" / "mixed".
bool ParseEdbShape(std::string_view text, EdbShape* out);

/// Recursion skeleton of the generated clique.
enum class RecursionKind {
  kLinear,          ///< t(X,Y) <- e(X,Z), t(Z,Y).
  kNonlinear,       ///< t(X,Y) <- t(X,Z), t(Z,Y).
  kMutual,          ///< two-predicate clique t <-> u
  kSameGeneration,  ///< t(X,Y) <- up(X,X1), t(X1,Y1), dn(Y1,Y).
};

const char* RecursionKindToString(RecursionKind kind);

/// Knobs of the random stratified-program grammar. Defaults are tuned so a
/// full differential matrix over one program runs in a few milliseconds.
struct ProgramGenOptions {
  EdbShape shape = EdbShape::kMixed;
  size_t min_edb_relations = 2;
  size_t max_edb_relations = 4;
  /// Facts per EDB relation (uniform in [min, max]).
  size_t min_facts = 4;
  size_t max_facts = 28;
  /// Constants are integers in [0, domain).
  size_t domain = 24;
  /// Probability of appending a comparison builtin (<, <=, >, >=, !=) over
  /// two already-bound variables to the top view's body.
  double builtin_probability = 0.35;
  /// Probability of a stratified `not ...` literal in the top view (all its
  /// variables bound by earlier positive literals). Programs with negation
  /// are exempt from the monotonicity metamorphic check.
  double negation_probability = 0.2;
  /// Probability of wrapping the recursive predicate in a nonrecursive view
  /// (the AND/OR structure NR-OPT actually optimizes).
  double view_probability = 0.7;
  /// Probability of an extra exit rule t(X,Y) <- e'(X,Y) (a second OR
  /// branch into the clique).
  double extra_exit_probability = 0.3;
  /// Query adornment mix: P(first argument bound); independently, P(second
  /// argument bound as well) — both-bound is a boolean query.
  double bound_query_probability = 0.55;
  double second_bound_probability = 0.15;
  /// Probability of injecting a statically dead rule: an extra exit rule
  /// whose body carries a sort-conflicting builtin (`X = zz_dead` where X
  /// ranges over the numeric EDB), so it derives nothing at run time and
  /// the semantic analyzer proves it unsatisfiable. Exercises dead-rule
  /// elimination in the differential matrix: answers must not change.
  /// Off (0.0) by default to preserve existing seed -> program mappings.
  double dead_rule_probability = 0.0;
  /// Probability of injecting an unreachable derived predicate
  /// (`zz_unreach(X,Y) <- e0(X,Y).` with nothing referring to it) that
  /// reachability-based dead-rule elimination must drop.
  /// Off (0.0) by default to preserve existing seed -> program mappings.
  double unreachable_predicate_probability = 0.0;
};

/// One generated program: stratified rules, a random EDB state, and one
/// query form. Every program this generator emits is safe by construction
/// under *textual* body order (builtins and negation appear after the
/// positive literals binding their variables), so every search strategy —
/// including the lexicographic baseline — must find a finite-cost plan.
struct GeneratedProgram {
  std::vector<Rule> rules;
  std::vector<Literal> facts;  ///< ground EDB facts
  Literal query;
  /// Compact human-readable description of the draw, e.g.
  /// "shape=chain rec=linear view builtin adorn=bf".
  std::string summary;

  bool HasNegation() const;

  /// Round-trippable LDL text: facts, rules, then the query form
  /// ("goal?"). Parsing it back yields the same program — the format the
  /// shrinker writes as repro-*.ldl.
  std::string ToLdl() const;

  /// Rule base as a validated Program (facts excluded).
  Result<Program> BuildProgram() const;

  /// Loads the facts into `db` (relations created on demand).
  Status BuildDatabase(Database* db) const;
};

/// Draws one program from the grammar. Deterministic in (*rng, options):
/// the same seed always yields the same program — repro stability leans on
/// the Rng sequence guarantee documented in base/rng.h.
GeneratedProgram GenerateProgram(Rng* rng, const ProgramGenOptions& options);

}  // namespace testing
}  // namespace ldl

#endif  // LDLOPT_TESTING_PROGRAM_GEN_H_
