// Tests for the Prometheus text exposition (src/obs/prometheus.h) and the
// metric-name hygiene it depends on (src/obs/metrics.h): a golden file pins
// the exposition byte-for-byte for a fixed registry, and the sanitation
// tests pin the regression where a caller-supplied name with spaces or
// parentheses ("delta size (tuples)") rendered as an invalid identifier in
// both the JSON dump and the exposition.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace ldl {
namespace {

// The fixed registry behind the golden file: one of each instrument kind
// plus the hostile names the sanitizer must rewrite.
void FillRegistry(MetricsRegistry* metrics) {
  metrics->counter("engine.tuples_examined")->Increment(42);
  metrics->counter("7 invalid name!")->Increment(1);
  metrics->gauge("optimizer.memo.size")->Set(3.5);
  Histogram* hist = metrics->histogram("fixpoint.delta size (tuples)");
  hist->Record(1);   // bucket 1: [1, 2)
  hist->Record(3);   // bucket 2: [2, 4)
  hist->Record(8);   // bucket 4: [8, 16)
}

BuildInfo TestBuildInfo() {
  BuildInfo info;
  info.compiler = "testcc 1.0";
  info.standard = "c++2020";
  info.build_type = "Golden";
  info.git = "deadbee";
  info.sanitizer = "";
  return info;
}

TEST(PrometheusTest, MatchesGoldenFile) {
  MetricsRegistry metrics;
  FillRegistry(&metrics);
  const BuildInfo info = TestBuildInfo();
  PrometheusOptions options;
  options.build_info = &info;
  const std::string actual = RenderPrometheus(metrics, options);

  const std::string path =
      std::string(LDLOPT_SOURCE_DIR) + "/tests/golden/metrics.golden.prom";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();

  // The exposition is a wire format scraped by external collectors:
  // changing it requires regenerating this golden deliberately.
  EXPECT_EQ(actual, buffer.str());
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsRegistry metrics;
  FillRegistry(&metrics);
  const std::string out = RenderPrometheus(metrics);
  const std::string name = "ldlopt_fixpoint_delta_size__tuples_";
  EXPECT_NE(out.find(name + "_bucket{le=\"1\"} 0\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"8\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"16\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_sum 12\n"), std::string::npos);
  EXPECT_NE(out.find(name + "_count 3\n"), std::string::npos);
}

TEST(MetricNameTest, CanonicalCharset) {
  EXPECT_TRUE(IsCanonicalMetricName("engine.tuples_examined"));
  EXPECT_TRUE(IsCanonicalMetricName("a:b_c.d9"));
  EXPECT_TRUE(IsCanonicalMetricName("_"));
  EXPECT_FALSE(IsCanonicalMetricName(""));
  EXPECT_FALSE(IsCanonicalMetricName("7leading_digit"));
  EXPECT_FALSE(IsCanonicalMetricName("has space"));
  EXPECT_FALSE(IsCanonicalMetricName("tab\there"));
}

TEST(MetricNameTest, SanitizeRewritesAndIsIdempotent) {
  EXPECT_EQ(SanitizeMetricName("delta size (tuples)"),
            "delta_size__tuples_");
  EXPECT_EQ(SanitizeMetricName("7invalid"), "_7invalid");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("engine.ok"), "engine.ok");
  const std::string once = SanitizeMetricName("a b\nc\"d");
  EXPECT_EQ(SanitizeMetricName(once), once);
  EXPECT_TRUE(IsCanonicalMetricName(once));
}

// Regression: a name with spaces used to land in the registry verbatim and
// render as an invalid identifier everywhere. Now the registry canonicalizes
// on every path, so the hostile and canonical spellings are one instrument
// and every surface shows the canonical name.
TEST(MetricNameTest, RegistrySanitizesOnEveryPath) {
  MetricsRegistry metrics;
  metrics.counter("delta size (tuples)")->Increment(5);
  EXPECT_EQ(metrics.counter("delta_size__tuples_")->value(), 5u);
  EXPECT_EQ(metrics.counter_value("delta size (tuples)"), 5u);

  std::ostringstream json;
  metrics.WriteJson(json);
  EXPECT_NE(json.str().find("\"delta_size__tuples_\":5"), std::string::npos);
  EXPECT_EQ(json.str().find("delta size"), std::string::npos);

  const std::string prom = RenderPrometheus(metrics);
  EXPECT_NE(prom.find("ldlopt_delta_size__tuples_ 5"), std::string::npos);
}

TEST(PromNameTest, MapsDotsAndPrefixes) {
  EXPECT_EQ(PromMetricName("engine.tuples_examined", "ldlopt_"),
            "ldlopt_engine_tuples_examined");
  EXPECT_EQ(PromMetricName("7invalid", "ldlopt_"), "ldlopt__7invalid");
  EXPECT_EQ(PromMetricName("7invalid", ""), "_7invalid");
  EXPECT_EQ(PromMetricName("", ""), "_");
}

TEST(PromLabelTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PromLabelEscape("plain"), "plain");
  EXPECT_EQ(PromLabelEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(PrometheusTest, BuildInfoLabelValuesAreEscaped) {
  MetricsRegistry metrics;
  metrics.counter("x")->Increment();
  BuildInfo info = TestBuildInfo();
  info.git = "tag\"with\\odd\nchars";
  PrometheusOptions options;
  options.build_info = &info;
  const std::string out = RenderPrometheus(metrics, options);
  EXPECT_NE(out.find("git=\"tag\\\"with\\\\odd\\nchars\""),
            std::string::npos);
  // The raw newline must not split the sample line: the line carrying the
  // git label still ends in the value.
  const size_t line_start = out.find("ldlopt_build_info{");
  ASSERT_NE(line_start, std::string::npos);
  const size_t line_end = out.find('\n', line_start);
  const std::string line = out.substr(line_start, line_end - line_start);
  EXPECT_NE(line.find("git="), std::string::npos);
  EXPECT_EQ(line.substr(line.size() - 2), " 1");
}

}  // namespace
}  // namespace ldl
