#include "storage/statistics.h"

#include <algorithm>
#include <sstream>

namespace ldl {

double RelationStats::EqConstSelectivity(size_t col) const {
  if (col < distinct.size() && distinct[col] > 0) return 1.0 / distinct[col];
  return cardinality > 0 ? 1.0 / cardinality : 1.0;
}

double RelationStats::EqJoinSelectivity(size_t col,
                                        double other_distinct) const {
  double d1 = (col < distinct.size() && distinct[col] > 0) ? distinct[col]
                                                           : cardinality;
  double d = std::max(d1, other_distinct);
  return d > 0 ? 1.0 / d : 1.0;
}

double RelationStats::FanOut(size_t col) const {
  if (col < distinct.size() && distinct[col] > 0) {
    return cardinality / distinct[col];
  }
  return 1.0;
}

Statistics Statistics::Collect(const Database& db) {
  Statistics stats;
  for (const PredicateId& pred : db.Predicates()) {
    const Relation* rel = db.Find(pred);
    RelationStats rs;
    rs.cardinality = static_cast<double>(rel->size());
    rs.distinct.resize(rel->arity());
    for (size_t c = 0; c < rel->arity(); ++c) {
      rs.distinct[c] = static_cast<double>(rel->DistinctCount(c));
    }
    stats.Set(pred, std::move(rs));
  }
  return stats;
}

void Statistics::Set(const PredicateId& pred, RelationStats stats) {
  stats_[pred] = std::move(stats);
}

std::vector<PredicateId> Statistics::Predicates() const {
  std::vector<PredicateId> out;
  out.reserve(stats_.size());
  for (const auto& [pred, rs] : stats_) out.push_back(pred);
  std::sort(out.begin(), out.end());
  return out;
}

const RelationStats& Statistics::Get(const PredicateId& pred) const {
  auto it = stats_.find(pred);
  return it == stats_.end() ? default_stats_ : it->second;
}

std::string Statistics::ToString() const {
  std::ostringstream os;
  for (const auto& [pred, rs] : stats_) {
    os << pred.ToString() << ": card=" << rs.cardinality << " distinct=(";
    for (size_t i = 0; i < rs.distinct.size(); ++i) {
      if (i) os << ", ";
      os << rs.distinct[i];
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace ldl
