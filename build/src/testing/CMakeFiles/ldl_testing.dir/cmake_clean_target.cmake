file(REMOVE_RECURSE
  "libldl_testing.a"
)
