#include "storage/relation.h"

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/statistics.h"
#include "ast/parser.h"

namespace ldl {
namespace {

Tuple Pair(int64_t a, int64_t b) {
  return {Term::MakeInt(a), Term::MakeInt(b)};
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r("edge", 2);
  EXPECT_TRUE(r.Insert(Pair(1, 2)));
  EXPECT_FALSE(r.Insert(Pair(1, 2)));
  EXPECT_TRUE(r.Insert(Pair(2, 1)));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Pair(1, 2)));
  EXPECT_FALSE(r.Contains(Pair(3, 3)));
}

TEST(RelationTest, IndexLookup) {
  Relation r("edge", 2);
  for (int64_t i = 0; i < 100; ++i) {
    r.Insert(Pair(i % 10, i));
  }
  const auto& ids = r.Lookup({0}, {Term::MakeInt(3)});
  EXPECT_EQ(ids.size(), 10u);
  for (uint32_t id : ids) {
    EXPECT_EQ(r.tuple(id)[0].int_value(), 3);
  }
}

TEST(RelationTest, IndexExtendsAfterInsert) {
  Relation r("edge", 2);
  r.Insert(Pair(1, 10));
  EXPECT_EQ(r.Lookup({0}, {Term::MakeInt(1)}).size(), 1u);
  r.Insert(Pair(1, 11));  // insert after the index exists
  EXPECT_EQ(r.Lookup({0}, {Term::MakeInt(1)}).size(), 2u);
}

TEST(RelationTest, MultiColumnIndex) {
  Relation r("t", 3);
  r.Insert({Term::MakeInt(1), Term::MakeInt(2), Term::MakeInt(3)});
  r.Insert({Term::MakeInt(1), Term::MakeInt(2), Term::MakeInt(4)});
  r.Insert({Term::MakeInt(1), Term::MakeInt(9), Term::MakeInt(3)});
  EXPECT_EQ(r.Lookup({0, 1}, {Term::MakeInt(1), Term::MakeInt(2)}).size(), 2u);
  EXPECT_EQ(r.Lookup({0, 2}, {Term::MakeInt(1), Term::MakeInt(3)}).size(), 2u);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation r("flag", 0);
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({}));
}

TEST(RelationTest, ComplexTermColumns) {
  Relation r("shape", 1);
  auto t1 = ParseTerm("poly([p(0,0), p(1,0), p(0,1)])");
  auto t2 = ParseTerm("poly([p(0,0), p(1,0), p(0,1)])");
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_TRUE(r.Insert({*t1}));
  EXPECT_FALSE(r.Insert({*t2}));  // structurally equal -> dedup
}

TEST(RelationTest, DistinctCount) {
  Relation r("edge", 2);
  for (int64_t i = 0; i < 30; ++i) r.Insert(Pair(i % 3, i));
  EXPECT_EQ(r.DistinctCount(0), 3u);
  EXPECT_EQ(r.DistinctCount(1), 30u);
}

TEST(DatabaseTest, GetOrCreateAndFacts) {
  Database db;
  EXPECT_EQ(db.Find({"edge", 2}), nullptr);
  Relation* r = db.GetOrCreate({"edge", 2});
  EXPECT_EQ(db.Find({"edge", 2}), r);

  auto lit = ParseLiteral("edge(1, 2)");
  ASSERT_TRUE(lit.ok());
  ASSERT_TRUE(db.AddFact(*lit).ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, RejectsNonGroundFact) {
  Database db;
  auto lit = ParseLiteral("edge(1, X)");
  ASSERT_TRUE(lit.ok());
  EXPECT_FALSE(db.AddFact(*lit).ok());
}

TEST(DatabaseTest, SameNameDifferentArityAreDistinct) {
  Database db;
  db.GetOrCreate({"p", 1})->Insert({Term::MakeInt(1)});
  db.GetOrCreate({"p", 2})->Insert(Pair(1, 2));
  EXPECT_EQ(db.Find({"p", 1})->size(), 1u);
  EXPECT_EQ(db.Find({"p", 2})->size(), 1u);
}

TEST(StatisticsTest, CollectComputesCardinalityAndDistinct) {
  Database db;
  Relation* r = db.GetOrCreate({"edge", 2});
  for (int64_t i = 0; i < 20; ++i) r->Insert(Pair(i % 4, i));
  Statistics stats = Statistics::Collect(db);
  const RelationStats& rs = stats.Get({"edge", 2});
  EXPECT_DOUBLE_EQ(rs.cardinality, 20.0);
  EXPECT_DOUBLE_EQ(rs.distinct[0], 4.0);
  EXPECT_DOUBLE_EQ(rs.distinct[1], 20.0);
  EXPECT_DOUBLE_EQ(rs.EqConstSelectivity(0), 0.25);
  EXPECT_DOUBLE_EQ(rs.FanOut(0), 5.0);
}

TEST(StatisticsTest, UnknownPredicateFallsBackToDefault) {
  Statistics stats;
  EXPECT_DOUBLE_EQ(stats.Get({"nope", 3}).cardinality,
                   stats.default_stats().cardinality);
}

TEST(StatisticsTest, EqJoinSelectivityUsesLargerDomain) {
  RelationStats rs;
  rs.cardinality = 100;
  rs.distinct = {10, 50};
  EXPECT_DOUBLE_EQ(rs.EqJoinSelectivity(0, 20.0), 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(rs.EqJoinSelectivity(1, 20.0), 1.0 / 50.0);
}

}  // namespace
}  // namespace ldl
