#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ldl/ldl.h"
#include "optimizer/optimizer.h"
#include "plan/processing_tree.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(AnnotateTreeTest, AndNodeChildrenReorderedByChosenPermutation) {
  Program p = P("q(X, Z) <- huge(X, Y), tiny(Y, Z).");
  Statistics stats;
  stats.Set({"huge", 2}, {100000.0, {100000.0, 300.0}});
  stats.Set({"tiny", 2}, {10.0, {10.0, 10.0}});
  auto tree = BuildProcessingTree(p, L("q(X, Z)"));
  ASSERT_TRUE(tree.ok());
  PlanNode* and_node = (*tree)->children[0].get();
  EXPECT_EQ(and_node->children[0]->goal.predicate_name(), "huge");

  Optimizer opt(p, stats);
  ASSERT_TRUE(opt.AnnotateTree(tree->get()).ok());
  // After annotation the chosen order (tiny first) is installed.
  EXPECT_EQ(and_node->children[0]->goal.predicate_name(), "tiny");
  EXPECT_EQ(and_node->body_order, (std::vector<size_t>{1, 0}));
  EXPECT_GT(and_node->est_cost, 0.0);
  EXPECT_GT((*tree)->est_cost, 0.0);
}

TEST(AnnotateTreeTest, CcNodeGetsMethodLabelAndPipelineFlag) {
  Program p = P(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
  )");
  Statistics stats;
  stats.Set({"up", 2}, {10000.0, {10000.0, 3333.0}});
  stats.Set({"dn", 2}, {10000.0, {3333.0, 10000.0}});
  stats.Set({"flat", 2}, {1000.0, {1000.0, 1000.0}});

  auto bound_tree = BuildProcessingTree(p, L("sg(1, Y)"));
  ASSERT_TRUE(bound_tree.ok());
  Optimizer opt_bound(p, stats);
  ASSERT_TRUE(opt_bound.AnnotateTree(bound_tree->get()).ok());
  EXPECT_TRUE((*bound_tree)->method == "magic" ||
              (*bound_tree)->method == "counting")
      << (*bound_tree)->method;
  EXPECT_FALSE((*bound_tree)->materialized);  // pipelined (triangle)

  auto free_tree = BuildProcessingTree(p, L("sg(X, Y)"));
  ASSERT_TRUE(free_tree.ok());
  Optimizer opt_free(p, stats);
  ASSERT_TRUE(opt_free.AnnotateTree(free_tree->get()).ok());
  EXPECT_EQ((*free_tree)->method, "seminaive");
  EXPECT_TRUE((*free_tree)->materialized);  // square node
}

TEST(AnnotateTreeTest, ScanNodesGetIndexLabelsUnderBindings) {
  Program p = P("q(X, Z) <- a(X, Y), b(Y, Z).");
  Statistics stats;
  stats.Set({"a", 2}, {1000.0, {100.0, 100.0}});
  stats.Set({"b", 2}, {1000.0, {100.0, 100.0}});
  auto tree = BuildProcessingTree(p, L("q(1, Z)"));
  ASSERT_TRUE(tree.ok());
  Optimizer opt(p, stats);
  ASSERT_TRUE(opt.AnnotateTree(tree->get()).ok());
  const PlanNode& and_node = *(*tree)->children[0];
  // First child runs with X bound (query constant); second with Y bound
  // (sideways information passing): both are index scans.
  EXPECT_EQ(and_node.children[0]->method, "index-scan");
  EXPECT_EQ(and_node.children[1]->method, "index-scan");
  EXPECT_EQ(and_node.children[0]->binding.BoundCount(), 1u);
  EXPECT_EQ(and_node.children[1]->binding.BoundCount(), 1u);
}

TEST(AnnotateTreeTest, FacadeExplainTree) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(R"(
    anc(X, Y) <- par(X, Y).
    anc(X, Y) <- par(X, Z), anc(Z, Y).
  )")
                  .ok());
  testing::MakeTreeParentData(3, 5, sys.database());
  sys.RefreshStatistics();
  auto text = sys.ExplainTree("anc(1, Y)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("CC"), std::string::npos);
  EXPECT_NE(text->find("cost="), std::string::npos);
}

}  // namespace
}  // namespace ldl
