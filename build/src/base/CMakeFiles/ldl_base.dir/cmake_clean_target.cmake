file(REMOVE_RECURSE
  "libldl_base.a"
)
