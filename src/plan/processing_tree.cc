#include "plan/processing_tree.h"

#include <sstream>

#include "base/strings.h"

namespace ldl {

const char* PlanNodeKindToString(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kScan:
      return "SCAN";
    case PlanNodeKind::kBuiltin:
      return "BUILTIN";
    case PlanNodeKind::kAnd:
      return "AND";
    case PlanNodeKind::kOr:
      return "OR";
    case PlanNodeKind::kCc:
      return "CC";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->materialized = materialized;
  copy->method = method;
  copy->goal = goal;
  copy->binding = binding;
  copy->projection = projection;
  copy->rule_index = rule_index;
  copy->body_order = body_order;
  copy->clique_predicates = clique_predicates;
  copy->clique_rules = clique_rules;
  copy->clique_orders = clique_orders;
  copy->est_cost = est_cost;
  copy->est_cardinality = est_cardinality;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

namespace {

void Render(const PlanNode& node, size_t depth, std::ostringstream& os) {
  for (size_t i = 0; i < depth; ++i) os << "  ";
  os << PlanNodeKindToString(node.kind);
  os << (node.materialized ? " [mat]" : " [pipe]");
  if (!node.method.empty()) os << ' ' << node.method;
  os << ' ' << node.goal.ToString();
  if (node.binding.size() > 0) os << " :" << node.binding.ToString();
  if (node.kind == PlanNodeKind::kAnd && node.rule_index != SIZE_MAX) {
    os << " (rule " << node.rule_index << ")";
  }
  if (node.kind == PlanNodeKind::kCc) {
    os << " {";
    for (size_t i = 0; i < node.clique_predicates.size(); ++i) {
      if (i) os << ", ";
      os << node.clique_predicates[i].ToString();
    }
    os << "}";
  }
  if (node.est_cost > 0) {
    os << " cost=" << node.est_cost << " card=" << node.est_cardinality;
  }
  os << '\n';
  for (const auto& child : node.children) Render(*child, depth + 1, os);
}

class TreeBuilder {
 public:
  TreeBuilder(const Program& program, const DependencyGraph& graph)
      : program_(program), graph_(graph) {}

  Result<std::unique_ptr<PlanNode>> BuildGoal(const Literal& goal,
                                              size_t depth) {
    if (depth > 64) {
      return Status::Internal(
          "processing tree nesting exceeded 64 (non-contracted recursion?)");
    }
    if (goal.IsBuiltin()) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanNodeKind::kBuiltin;
      node->method = "builtin";
      node->goal = goal;
      return node;
    }
    const PredicateId pred = goal.predicate();
    if (!program_.IsDerived(pred)) {
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanNodeKind::kScan;
      node->method = "scan";
      node->goal = goal;
      node->binding = Adornment::FromGoal(goal);
      return node;
    }
    if (graph_.IsRecursive(pred)) return BuildCc(goal, depth);
    return BuildOr(goal, depth);
  }

 private:
  Result<std::unique_ptr<PlanNode>> BuildOr(const Literal& goal,
                                            size_t depth) {
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kOr;
    node->method = "union";
    node->goal = goal;
    node->binding = Adornment::FromGoal(goal);
    for (size_t rule_index : program_.RulesFor(goal.predicate())) {
      LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> and_node,
                           BuildAnd(rule_index, depth + 1));
      node->children.push_back(std::move(and_node));
    }
    return node;
  }

  Result<std::unique_ptr<PlanNode>> BuildAnd(size_t rule_index, size_t depth) {
    const Rule& rule = program_.rules()[rule_index];
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kAnd;
    node->method = "nested-loop";
    node->goal = rule.head();
    node->rule_index = rule_index;
    node->body_order.resize(rule.body().size());
    for (size_t i = 0; i < rule.body().size(); ++i) {
      node->body_order[i] = i;
      LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> child,
                           BuildGoal(rule.body()[i], depth + 1));
      node->children.push_back(std::move(child));
    }
    return node;
  }

  // Contracted clique node: one node for the whole fixpoint. Its children
  // are the subtrees of the *non-clique* literals appearing in the clique's
  // rules — the operands of the fixpoint operator.
  Result<std::unique_ptr<PlanNode>> BuildCc(const Literal& goal,
                                            size_t depth) {
    const RecursiveClique& clique =
        graph_.cliques()[graph_.CliqueIndex(goal.predicate())];
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kCc;
    node->method = "seminaive";
    node->goal = goal;
    node->binding = Adornment::FromGoal(goal);
    node->clique_predicates = clique.predicates;
    node->clique_rules = clique.exit_rules;
    node->clique_rules.insert(node->clique_rules.end(),
                              clique.recursive_rules.begin(),
                              clique.recursive_rules.end());
    for (size_t rule_index : node->clique_rules) {
      const Rule& rule = program_.rules()[rule_index];
      std::vector<size_t> order(rule.body().size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      node->clique_orders.push_back(std::move(order));
      for (const Literal& lit : rule.body()) {
        if (!lit.IsBuiltin() && clique.Contains(lit.predicate())) continue;
        LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> child,
                             BuildGoal(lit, depth + 1));
        node->children.push_back(std::move(child));
      }
    }
    return node;
  }

  const Program& program_;
  const DependencyGraph& graph_;
};

}  // namespace

std::string PlanNode::ToString() const {
  std::ostringstream os;
  Render(*this, 0, os);
  return os.str();
}

Result<std::unique_ptr<PlanNode>> BuildProcessingTree(const Program& program,
                                                      const Literal& goal) {
  DependencyGraph graph = DependencyGraph::Build(program);
  TreeBuilder builder(program, graph);
  return builder.BuildGoal(goal, 0);
}

size_t TreeSize(const PlanNode& node) {
  size_t n = 1;
  for (const auto& child : node.children) n += TreeSize(*child);
  return n;
}

}  // namespace ldl
