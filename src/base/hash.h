#ifndef LDLOPT_BASE_HASH_H_
#define LDLOPT_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ldl {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes any std::hash-able value into `seed`.
template <typename T>
void HashValue(size_t* seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace ldl

#endif  // LDLOPT_BASE_HASH_H_
