// Experiment E6 — Figure 7-1's memoization claim:
//
//   "This algorithm guarantees that each subtree is optimized exactly ONCE
//    for each binding."
//
// We build layered nonrecursive rule bases where the same predicates are
// referenced by many rules, and compare optimizer effort (subplans
// optimized, cost evaluations, wall-clock) with the per-binding memo on
// and off. Without the memo the work grows with the number of *references*;
// with it, with the number of distinct (predicate, binding) pairs.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "base/strings.h"
#include "bench_util.h"
#include "optimizer/optimizer.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

/// Builds a layered rule base: `layers` layers of `width` predicates; each
/// predicate joins two predicates of the layer below (heavy sharing).
/// Layer 0 predicates are base relations.
Program MakeLayeredProgram(size_t layers, size_t width) {
  std::string text;
  for (size_t l = 1; l <= layers; ++l) {
    for (size_t p = 0; p < width; ++p) {
      std::string below1 = (l == 1 ? "base" : "p") +
                           std::to_string(l - 1) + "_" +
                           std::to_string(p % width);
      std::string below2 = (l == 1 ? "base" : "p") +
                           std::to_string(l - 1) + "_" +
                           std::to_string((p + 1) % width);
      text += StrCat("p", l, "_", p, "(X, Z) <- ", below1, "(X, Y), ",
                     below2, "(Y, Z).\n");
    }
  }
  auto program = ParseProgram(text);
  return *program;
}

Statistics LayeredStats(size_t width) {
  Statistics stats;
  for (size_t p = 0; p < width; ++p) {
    stats.Set({StrCat("base0_", p), 2},
              {1000.0 + 100.0 * static_cast<double>(p), {100.0, 100.0}});
  }
  return stats;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E6", "NR-OPT per-binding memoization (Figure 7-1) — "
                      "optimizer effort with the memo on vs off");
  Table table({"layers x width", "memo", "subplans", "memo hits",
               "cost evals", "ms", "plan cost"});
  for (auto [layers, width] : {std::pair<size_t, size_t>{2, 3},
                               std::pair<size_t, size_t>{3, 3},
                               std::pair<size_t, size_t>{4, 3},
                               std::pair<size_t, size_t>{5, 3}}) {
    Program program = MakeLayeredProgram(layers, width);
    Statistics stats = LayeredStats(width);
    Literal goal = Literal::Make(StrCat("p", layers, "_0"),
                                 {Term::MakeVariable("X"),
                                  Term::MakeVariable("Z")});
    for (bool memo : {true, false}) {
      if (!memo && layers > 4) {
        table.AddRow({StrCat(layers, " x ", width), "off", "(skipped:",
                      "exponential", "blow-up)", "-", "-"});
        continue;
      }
      OptimizerOptions options;
      options.memoize = memo;
      Optimizer opt(program, stats, options);
      Stopwatch watch;
      auto plan = opt.Optimize(goal);
      double ms = watch.ElapsedMs();
      if (!plan.ok()) continue;
      table.AddRow({StrCat(layers, " x ", width), memo ? "on" : "off",
                    std::to_string(plan->search_stats.subplans_optimized),
                    std::to_string(plan->search_stats.memo_hits),
                    std::to_string(plan->search_stats.cost_evaluations),
                    Fmt(ms, "%.2f"), Fmt(plan->TotalCost())});
    }
  }
  table.Print();
  std::printf(
      "Expected shape: with the memo, subplans grow linearly in the number\n"
      "of (predicate, binding) pairs; without it, exponentially in depth.\n"
      "Plan cost is identical either way (the memo is pure caching).\n\n");
}

namespace {

void BM_OptimizeLayered(benchmark::State& state) {
  bool memo = state.range(0) != 0;
  Program program = MakeLayeredProgram(3, 3);
  Statistics stats = LayeredStats(3);
  Literal goal = Literal::Make(
      "p3_0", {Term::MakeVariable("X"), Term::MakeVariable("Z")});
  for (auto _ : state) {
    OptimizerOptions options;
    options.memoize = memo;
    Optimizer opt(program, stats, options);
    benchmark::DoNotOptimize(opt.Optimize(goal));
  }
  state.SetLabel(memo ? "memo-on" : "memo-off");
}
BENCHMARK(BM_OptimizeLayered)->Arg(1)->Arg(0);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("nropt_memo");
  return 0;
}
