#ifndef LDLOPT_STORAGE_SHARDED_H_
#define LDLOPT_STORAGE_SHARDED_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "storage/tuple.h"

namespace ldl {

/// A thread-local output buffer for one parallel evaluation task: a
/// duplicate-free vector of tuples with their TupleHash values cached so the
/// downstream sharded merge never re-hashes. Not thread-safe — each worker
/// task owns exactly one batch, which is the point: workers derive into
/// private batches with zero synchronization, and only the merge barrier
/// touches shared state.
class TupleBatch {
 public:
  TupleBatch() = default;
  explicit TupleBatch(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const std::vector<size_t>& hashes() const { return hashes_; }

  /// Inserts `t` if not already present; returns true iff new. Mirrors
  /// Relation::Insert so rule evaluation can emit into either sink.
  bool Insert(Tuple t);

  /// Estimated heap bytes held by the batch, for resource accounting.
  uint64_t ApproxBytes() const { return approx_bytes_; }

  void Clear();

 private:
  size_t arity_ = 0;
  std::vector<Tuple> tuples_;
  std::vector<size_t> hashes_;  // hashes_[i] == TupleHash{}(tuples_[i])
  // Dedup structure: hash -> ids of tuples_ entries with that hash.
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  uint64_t approx_bytes_ = 0;
};

/// Two-phase deterministic merge of per-task TupleBatches into a global
/// (full, delta) relation pair — the round barrier of the parallel
/// semi-naive loop.
///
/// Phase 1, CollectShard(s, ...), may run on P threads concurrently (one
/// shard each): it reads the frozen `base` relation and the frozen batches,
/// keeping only tuples whose hash routes to shard `s`, that are absent from
/// `base`, and that were not already collected by an earlier batch within
/// the shard. Shards partition the hash space, so no tuple is examined by
/// two threads and no locks are needed.
///
/// Phase 2, Commit(), runs on the coordinator after the barrier: it appends
/// shard 0..P-1 in order into `full` and `delta` via AppendUnchecked.
/// Because batches are always presented in task order and shards commit in
/// shard order, the merged contents — and therefore every subsequent round —
/// are identical for any worker schedule.
class ShardedMerger {
 public:
  explicit ShardedMerger(size_t num_shards);

  size_t num_shards() const { return shards_.size(); }

  /// Phase 1 (parallel-safe across distinct shards). `batches` must be the
  /// same task-ordered list for every shard; null entries are skipped.
  void CollectShard(size_t shard, const std::vector<const TupleBatch*>& batches,
                    const Relation& base);

  /// Phase 2 (coordinator only). Appends all collected tuples into `full`
  /// and, when non-null, `delta`; returns the number of new tuples. The
  /// merger is left empty and reusable for the next round.
  size_t Commit(Relation* full, Relation* delta);

  /// Total tuples collected so far (valid after all CollectShard calls).
  size_t CollectedCount() const;

 private:
  struct Shard {
    std::vector<Tuple> tuples;
    std::vector<size_t> hashes;
    std::unordered_map<size_t, std::vector<uint32_t>> dedup;
  };

  std::vector<Shard> shards_;
};

/// Partitions `rel` into `parts` relations by TupleHash modulo, preserving
/// relative tuple order within each partition. Partition relations reuse the
/// source's name/arity and carry no accountant (they are transient views for
/// one parallel round).
std::vector<Relation> HashPartitionRelation(const Relation& rel, size_t parts);

}  // namespace ldl

#endif  // LDLOPT_STORAGE_SHARDED_H_
