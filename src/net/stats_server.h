#ifndef LDLOPT_NET_STATS_SERVER_H_
#define LDLOPT_NET_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "base/status.h"
#include "obs/feedback.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/query_log.h"
#include "obs/timeseries.h"
#include "storage/statistics.h"

namespace ldl {

/// What the stats endpoints can see. All pointers are optional and
/// non-owning; they must outlive the server (Stop before tearing them
/// down).
struct StatsServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port()). The listener binds 127.0.0.1 only — this is an operator
  /// endpoint, not a public one.
  int port = 0;
  MetricsRegistry* metrics = nullptr;
  TimeSeriesSampler* sampler = nullptr;    ///< sparkline data for /statusz
  QueryLog* query_log = nullptr;           ///< tail shown on /statusz
  ProcessMetricsSource* process = nullptr; ///< uptime + build info
  size_t log_tail = 8;                     ///< query-log records on /statusz
  /// Feedback loop surfaces (/stats, plus the epoch/drift section of
  /// /statusz). `statistics` is read for the live epoch and per-predicate
  /// estimates; the owner must keep it alive and stable-addressed.
  const StatisticsCatalog* feedback = nullptr;
  const DriftDetector* drift = nullptr;
  const Statistics* statistics = nullptr;
  /// Invoked before rendering /metrics or /statusz (refresh process gauges,
  /// flush deferred exports...). May be empty.
  std::function<void()> refresh;
};

/// Minimal blocking HTTP/1.1 stats endpoint on a dedicated thread:
///
///   GET /metrics   Prometheus text exposition v0.0.4 of the registry
///   GET /healthz   "ok" (liveness)
///   GET /statusz   JSON: uptime, build info, time-series sparkline data,
///                  tail of the query log, request counts, stats epoch +
///                  drift counters when the feedback loop is attached
///   GET /stats     JSON: the feedback statistics catalog — per-predicate
///                  measured cardinality, live estimate and q-error,
///                  coverage gaps, and the drift-event history
///
/// Connections are handled one at a time on the accept thread (requests
/// are tiny and responses are built in memory, so a scrape is microseconds
/// of work; bounded handling beats an unbounded thread-per-connection for
/// an embedded operator port). Reads are capped (8 KiB, 2 s timeout) so a
/// stuck client cannot wedge the server. Stop() is graceful: it wakes the
/// accept loop via shutdown(2), joins the thread, then closes the socket.
///
/// This is deliberately the shape a future ldl_serve daemon can grow from:
/// the listener/accept/drain skeleton is query-agnostic, only the handlers
/// know about observability.
class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options)
      : options_(std::move(options)) {}
  ~StatsServer() { Stop(); }

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds, listens, and spawns the accept thread. InvalidArgument on any
  /// socket error (port already bound, ...).
  Status Start();

  /// Graceful shutdown; idempotent, safe to call without Start.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The bound port (the real one when options.port == 0); 0 before Start.
  int port() const { return port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Handler core, exposed for tests: the response body + content type for
  /// a given path, or false for 404. (No sockets involved.)
  bool HandlePath(const std::string& path, std::string* body,
                  std::string* content_type);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::string RenderMetrics();
  std::string RenderStatusz();
  std::string RenderStats();

  StatsServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace ldl

#endif  // LDLOPT_NET_STATS_SERVER_H_
