#ifndef LDLOPT_ENGINE_FIXPOINT_H_
#define LDLOPT_ENGINE_FIXPOINT_H_

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "base/status.h"
#include "engine/parallel.h"
#include "engine/rule_eval.h"
#include "obs/context.h"
#include "storage/database.h"

namespace ldl {

/// The recursive-query implementation methods the optimizer chooses among
/// at CC nodes (paper section 7.3): naive/seminaive fixpoint for free
/// query forms, Magic Sets [BMSU 85] and generalized Counting [SZ 86] for
/// bound query forms.
enum class RecursionMethod {
  kNaive,
  kSemiNaive,
  kMagic,
  kCounting,
};

const char* RecursionMethodToString(RecursionMethod method);

struct FixpointOptions {
  /// Hard cap on fixpoint rounds per clique; tripping it means the program
  /// is (or behaves) unsafe.
  size_t max_iterations = 1'000'000;
  /// Cap on derivations inside a single rule firing round.
  size_t max_derivations = 200'000'000;
  /// Body evaluation order per rule index (from the optimizer's chosen
  /// permutations); missing entries use textual order.
  std::unordered_map<size_t, std::vector<size_t>> rule_orders;
  /// Observability handle: spans per clique fixpoint, per-round counters
  /// and delta-size histograms. Inert by default.
  TraceContext trace;
  /// Record a FixpointIteration per round into FixpointStats::per_iteration
  /// (with wall-clock timing; off by default because clock reads per round
  /// are not free).
  bool record_iterations = false;
  /// Label stamped on recorded iterations: the overall recursion method as
  /// the caller sees it ("magic"/"counting" run semi-naive after their
  /// rewrite, and the rewritten rounds should be attributed to the method,
  /// not the machinery). Empty = use the raw fixpoint discipline.
  std::string method_label;
  /// Parallel engine knobs. num_threads = 1 (default) runs the original
  /// sequential code path unchanged; > 1 hash-partitions each round across
  /// a worker pool with a deterministic sharded merge barrier. Answers are
  /// identical at every thread count (rounds use frozen snapshots, so the
  /// *round trajectory* of semi-naive may differ from sequential, which
  /// sees same-round inserts early — both converge to the same fixpoint).
  EngineOptions engine;
};

/// One fixpoint round of one clique — the convergence curve of the chosen
/// RecursionMethod (delta cardinality per round is the quantity the
/// semi-naive argument is about).
struct FixpointIteration {
  std::string clique;      ///< representative member, e.g. "anc/2"
  std::string method;      ///< method label ("naive", "seminaive", ...)
  size_t iteration = 0;    ///< 1-based round number within the clique
  size_t delta_tuples = 0;  ///< new tuples this round (0 = convergence round)
  size_t derivations = 0;  ///< head tuples produced this round (pre-dedup)
  double wall_ms = 0;
};

struct FixpointStats {
  size_t iterations = 0;  ///< total fixpoint rounds across all cliques
  EvalCounters counters;
  /// Per-round telemetry, only populated when
  /// FixpointOptions::record_iterations is set.
  std::vector<FixpointIteration> per_iteration;

  std::string ToString() const;

  /// Adds the stats into the registry (engine.fixpoint.iterations plus the
  /// EvalCounters engine.* names). No-op on nullptr.
  void ExportTo(MetricsRegistry* metrics) const;

  /// JSON array of the per-round telemetry:
  /// [{"clique","method","iteration","delta_tuples","derivations",
  ///   "wall_ms"}, ...].
  void WriteIterationsJson(std::ostream& os) const;
};

/// Evaluates every derived predicate of `program` bottom-up into `scratch`.
/// Base relations are read from `base`; derived relations are created in
/// `scratch` (so repeated evaluations never pollute the fact base).
/// `method` must be kNaive or kSemiNaive; the rewriting methods (magic,
/// counting) are separate source-to-source transforms that then run
/// semi-naive (see engine/magic.h, engine/counting.h).
///
/// The program must be stratified; strata are evaluated bottom-up so that
/// negated literals always refer to completed relations.
Status EvaluateProgram(const Program& program, RecursionMethod method,
                       Database* base, Database* scratch,
                       FixpointStats* stats,
                       const FixpointOptions& options = {});

}  // namespace ldl

#endif  // LDLOPT_ENGINE_FIXPOINT_H_
