file(REMOVE_RECURSE
  "libldl_ast.a"
)
