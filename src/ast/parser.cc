#include "ast/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "base/strings.h"

namespace ldl {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,    // lower-case identifier: predicate, symbol, functor
  kVar,      // upper-case / underscore identifier
  kInt,
  kReal,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDot,
  kBar,
  kQuestion,
  kArrow,    // <- or :-
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kMod,      // `mod` keyword is lexed as kIdent and promoted by the parser
  kNot,      // `not` keyword (promoted from kIdent)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t line = 1;
};

/// Converts program text into a token stream. Reports the first lexical
/// error through status().
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      Token tok;
      tok.line = line_;
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LDL_RETURN_NOT_OK(LexNumber(&tok));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdent(&tok);
      } else if (c == '"') {
        LDL_RETURN_NOT_OK(LexString(&tok));
      } else {
        LDL_RETURN_NOT_OK(LexPunct(&tok));
      }
      out->push_back(std::move(tok));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    out->push_back(end);
    return Status::OK();
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_real = false;
    if (pos_ + 1 < text_.size() && text_[pos_] == '.' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      is_real = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string num(text_.substr(start, pos_ - start));
    if (is_real) {
      tok->kind = TokenKind::kReal;
      tok->real_value = std::strtod(num.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInt;
      tok->int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  void LexIdent(Token* tok) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    tok->text = std::string(text_.substr(start, pos_ - start));
    char first = tok->text[0];
    if (tok->text == "not") {
      tok->kind = TokenKind::kNot;
    } else if (tok->text == "mod") {
      tok->kind = TokenKind::kMod;
    } else if (std::isupper(static_cast<unsigned char>(first)) ||
               first == '_') {
      tok->kind = TokenKind::kVar;
    } else {
      tok->kind = TokenKind::kIdent;
    }
  }

  Status LexString(Token* tok) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        char esc = text_[pos_];
        value += (esc == 'n') ? '\n' : (esc == 't') ? '\t' : esc;
      } else {
        value += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(
          StrCat("line ", line_, ": unterminated string literal"));
    }
    ++pos_;  // closing quote
    tok->kind = TokenKind::kString;
    tok->text = std::move(value);
    return Status::OK();
  }

  Status LexPunct(Token* tok) {
    auto two = [this](char a, char b) {
      return pos_ + 1 < text_.size() && text_[pos_] == a &&
             text_[pos_ + 1] == b;
    };
    if (two('<', '-') || two(':', '-')) {
      tok->kind = TokenKind::kArrow;
      pos_ += 2;
      return Status::OK();
    }
    if (two('<', '=')) {
      tok->kind = TokenKind::kLe;
      pos_ += 2;
      return Status::OK();
    }
    if (two('>', '=')) {
      tok->kind = TokenKind::kGe;
      pos_ += 2;
      return Status::OK();
    }
    if (two('!', '=') || two('\\', '=')) {
      tok->kind = TokenKind::kNe;
      pos_ += 2;
      return Status::OK();
    }
    char c = text_[pos_];
    ++pos_;
    switch (c) {
      case '(':
        tok->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        tok->kind = TokenKind::kRParen;
        return Status::OK();
      case '[':
        tok->kind = TokenKind::kLBracket;
        return Status::OK();
      case ']':
        tok->kind = TokenKind::kRBracket;
        return Status::OK();
      case ',':
        tok->kind = TokenKind::kComma;
        return Status::OK();
      case '.':
        tok->kind = TokenKind::kDot;
        return Status::OK();
      case '|':
        tok->kind = TokenKind::kBar;
        return Status::OK();
      case '?':
        tok->kind = TokenKind::kQuestion;
        return Status::OK();
      case '=':
        tok->kind = TokenKind::kEq;
        return Status::OK();
      case '<':
        tok->kind = TokenKind::kLt;
        return Status::OK();
      case '>':
        tok->kind = TokenKind::kGt;
        return Status::OK();
      case '+':
        tok->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        tok->kind = TokenKind::kMinus;
        return Status::OK();
      case '*':
        tok->kind = TokenKind::kStar;
        return Status::OK();
      case '/':
        tok->kind = TokenKind::kSlash;
        return Status::OK();
      default:
        return Status::InvalidArgument(
            StrCat("line ", line_, ": unexpected character '", c, "'"));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEnd) {
      LDL_ASSIGN_OR_RETURN(Literal head, ParseLiteralInternal());
      if (Peek().kind == TokenKind::kQuestion) {
        Advance();
        program.AddQuery(QueryForm{std::move(head)});
        continue;
      }
      if (Peek().kind == TokenKind::kDot) {
        Advance();
        // Head-only clause: a fact if ground, else a bodiless rule.
        bool ground = true;
        for (const Term& t : head.args()) ground = ground && t.IsGround();
        if (head.IsBuiltin()) {
          return Err("builtin cannot stand alone as a clause");
        }
        if (ground) {
          program.AddFact(std::move(head));
        } else {
          program.AddRule(Rule(std::move(head), {}));
        }
        continue;
      }
      LDL_RETURN_NOT_OK(Expect(TokenKind::kArrow, "'<-', '.' or '?'"));
      std::vector<Literal> body;
      while (true) {
        LDL_ASSIGN_OR_RETURN(Literal lit, ParseLiteralInternal());
        body.push_back(std::move(lit));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      LDL_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
      program.AddRule(Rule(std::move(head), std::move(body)));
    }
    LDL_RETURN_NOT_OK(program.Validate());
    return program;
  }

  Result<Literal> ParseSingleLiteral() {
    LDL_ASSIGN_OR_RETURN(Literal lit, ParseLiteralInternal());
    LDL_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return lit;
  }

  Result<Term> ParseSingleTerm() {
    LDL_ASSIGN_OR_RETURN(Term t, ParseExpr());
    LDL_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return t;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(std::string_view what) const {
    return Status::InvalidArgument(
        StrCat("line ", Peek().line, ": ", what));
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Err(StrCat("expected ", what));
    }
    Advance();
    return Status::OK();
  }

  static std::optional<BuiltinKind> AsComparison(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
        return BuiltinKind::kEq;
      case TokenKind::kNe:
        return BuiltinKind::kNe;
      case TokenKind::kLt:
        return BuiltinKind::kLt;
      case TokenKind::kLe:
        return BuiltinKind::kLe;
      case TokenKind::kGt:
        return BuiltinKind::kGt;
      case TokenKind::kGe:
        return BuiltinKind::kGe;
      default:
        return std::nullopt;
    }
  }

  // literal := "not" atom | atom | expr relop expr
  Result<Literal> ParseLiteralInternal() {
    if (Peek().kind == TokenKind::kNot) {
      Advance();
      LDL_ASSIGN_OR_RETURN(Literal lit, ParseLiteralInternal());
      if (lit.IsBuiltin()) {
        return Status::InvalidArgument("'not' cannot be applied to a builtin");
      }
      return Literal::MakeNegated(lit.predicate_name(),
                                  std::vector<Term>(lit.args()));
    }
    LDL_ASSIGN_OR_RETURN(Term lhs, ParseExpr());
    if (auto cmp = AsComparison(Peek().kind)) {
      Advance();
      LDL_ASSIGN_OR_RETURN(Term rhs, ParseExpr());
      return Literal::MakeBuiltin(*cmp, std::move(lhs), std::move(rhs));
    }
    // Not a comparison: the expression itself must denote an atom.
    if (lhs.kind() == TermKind::kSymbol) {
      return Literal::Make(lhs.text(), {});
    }
    if (lhs.kind() == TermKind::kFunction) {
      return Literal::Make(lhs.text(), std::vector<Term>(lhs.args()));
    }
    return Err(StrCat("expected a literal, got term ", lhs.ToString()));
  }

  // expr := addend (("+"|"-") addend)*
  Result<Term> ParseExpr() {
    LDL_ASSIGN_OR_RETURN(Term lhs, ParseAddend());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      std::string op = Peek().kind == TokenKind::kPlus ? "+" : "-";
      Advance();
      LDL_ASSIGN_OR_RETURN(Term rhs, ParseAddend());
      lhs = Term::MakeFunction(op, {std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  // addend := factor (("*"|"/"|"mod") factor)*
  Result<Term> ParseAddend() {
    LDL_ASSIGN_OR_RETURN(Term lhs, ParseFactor());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kMod) {
      std::string op = Peek().kind == TokenKind::kStar    ? "*"
                       : Peek().kind == TokenKind::kSlash ? "/"
                                                          : "mod";
      Advance();
      LDL_ASSIGN_OR_RETURN(Term rhs, ParseFactor());
      lhs = Term::MakeFunction(op, {std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  // factor := "-" factor | "(" expr ")" | list | scalar | ident [ "(" args ")" ]
  Result<Term> ParseFactor() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kMinus: {
        Advance();
        LDL_ASSIGN_OR_RETURN(Term inner, ParseFactor());
        if (inner.kind() == TermKind::kInt) {
          return Term::MakeInt(-inner.int_value());
        }
        if (inner.kind() == TermKind::kReal) {
          return Term::MakeReal(-inner.real_value());
        }
        return Term::MakeFunction("-", {Term::MakeInt(0), std::move(inner)});
      }
      case TokenKind::kLParen: {
        Advance();
        LDL_ASSIGN_OR_RETURN(Term inner, ParseExpr());
        LDL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kLBracket:
        return ParseList();
      case TokenKind::kInt: {
        int64_t v = tok.int_value;
        Advance();
        return Term::MakeInt(v);
      }
      case TokenKind::kReal: {
        double v = tok.real_value;
        Advance();
        return Term::MakeReal(v);
      }
      case TokenKind::kString: {
        std::string v = tok.text;
        Advance();
        return Term::MakeString(std::move(v));
      }
      case TokenKind::kVar: {
        std::string v = tok.text;
        Advance();
        return Term::MakeVariable(std::move(v));
      }
      case TokenKind::kIdent: {
        std::string name = tok.text;
        Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<Term> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              LDL_ASSIGN_OR_RETURN(Term arg, ParseExpr());
              args.push_back(std::move(arg));
              if (Peek().kind == TokenKind::kComma) {
                Advance();
                continue;
              }
              break;
            }
          }
          LDL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          return Term::MakeFunction(std::move(name), std::move(args));
        }
        return Term::MakeSymbol(std::move(name));
      }
      default:
        return Err("expected a term");
    }
  }

  // list := "[" "]" | "[" expr ("," expr)* ("|" expr)? "]"
  Result<Term> ParseList() {
    LDL_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
    if (Peek().kind == TokenKind::kRBracket) {
      Advance();
      return Term::MakeSymbol("[]");
    }
    std::vector<Term> items;
    while (true) {
      LDL_ASSIGN_OR_RETURN(Term item, ParseExpr());
      items.push_back(std::move(item));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    Term tail = Term::MakeSymbol("[]");
    if (Peek().kind == TokenKind::kBar) {
      Advance();
      LDL_ASSIGN_OR_RETURN(tail, ParseExpr());
    }
    LDL_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    return Term::MakeList(items, std::move(tail));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::vector<Token>> TokenizeAll(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> tokens;
  LDL_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  return tokens;
}

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeAll(text));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Literal> ParseLiteral(std::string_view text) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeAll(text));
  Parser parser(std::move(tokens));
  return parser.ParseSingleLiteral();
}

Result<Term> ParseTerm(std::string_view text) {
  LDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeAll(text));
  Parser parser(std::move(tokens));
  return parser.ParseSingleTerm();
}

}  // namespace ldl
