// Tests for the workload-log analytics (src/obs/workload.h): per-signature
// aggregation, latency percentiles, and the two-log diff that flags plan
// fingerprint drift, outcome changes, and latency regressions (what
// `ldl_workload --check` gates CI on).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/query_log.h"
#include "obs/workload.h"

namespace ldl {
namespace {

QueryLogRecord MakeRecord(const std::string& query, const std::string& plan,
                          double total_ms, const std::string& outcome = "ok") {
  QueryLogRecord rec;
  rec.program = "prog.ldl";
  rec.query = query;
  rec.adornment = "bf";
  rec.method = "magic";
  rec.plan_fingerprint = plan;
  rec.outcome = outcome;
  rec.total_ms = total_ms;
  rec.tuples_examined = 10;
  rec.tuples_derived = 4;
  rec.peak_bytes = 1000;
  rec.answers = 2;
  return rec;
}

TEST(WorkloadReportTest, AggregatesBySignature) {
  std::vector<QueryLogRecord> records;
  records.push_back(MakeRecord("a(X)", "p1", 1.0));
  records.push_back(MakeRecord("a(X)", "p1", 3.0));
  records.push_back(MakeRecord("b(X)", "p2", 2.0, "unsafe"));
  const WorkloadReport report = WorkloadReport::Build(records);

  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.outcomes.at("ok"), 2u);
  EXPECT_EQ(report.outcomes.at("unsafe"), 1u);
  ASSERT_EQ(report.by_signature.size(), 2u);

  const SignatureAggregate& a = report.by_signature.at("prog.ldl|a(X)|bf");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.ok, 2u);
  EXPECT_EQ(a.plans.at("p1"), 2u);
  EXPECT_EQ(a.tuples_examined, 20u);
  EXPECT_EQ(a.latency_max(), 3.0);

  const SignatureAggregate& b = report.by_signature.at("prog.ldl|b(X)|bf");
  EXPECT_EQ(b.ok, 0u);
  EXPECT_EQ(b.outcomes.at("unsafe"), 1u);
}

TEST(WorkloadReportTest, LatencyPercentiles) {
  std::vector<QueryLogRecord> records;
  for (int i = 1; i <= 100; ++i) {
    records.push_back(MakeRecord("a(X)", "p1", static_cast<double>(i)));
  }
  const WorkloadReport report = WorkloadReport::Build(records);
  const SignatureAggregate& agg = report.by_signature.at("prog.ldl|a(X)|bf");
  EXPECT_EQ(agg.LatencyPercentile(0.0), 1.0);
  EXPECT_EQ(agg.LatencyPercentile(1.0), 100.0);
  EXPECT_NEAR(agg.LatencyPercentile(0.50), 51.0, 1.0);
  EXPECT_NEAR(agg.LatencyPercentile(0.95), 96.0, 1.0);
}

TEST(WorkloadReportTest, ToStringListsSignaturesAndTopRecords) {
  std::vector<QueryLogRecord> records;
  records.push_back(MakeRecord("a(X)", "p1", 1.0));
  QueryLogRecord heavy = MakeRecord("b(X)", "p2", 9.0);
  heavy.tuples_examined = 999;
  records.push_back(heavy);
  const std::string text = WorkloadReport::Build(records).ToString(1);
  EXPECT_NE(text.find("2 records, 2 signatures"), std::string::npos);
  EXPECT_NE(text.find("prog.ldl|a(X)|bf"), std::string::npos);
  EXPECT_NE(text.find("top 1 records by tuples examined"),
            std::string::npos);
  EXPECT_NE(text.find("999"), std::string::npos);
}

TEST(WorkloadDiffTest, CleanRerunHasNoFindings) {
  std::vector<QueryLogRecord> records;
  records.push_back(MakeRecord("a(X)", "p1", 1.0));
  records.push_back(MakeRecord("b(X)", "p2", 2.0));
  const WorkloadReport before = WorkloadReport::Build(records);
  const WorkloadReport after = WorkloadReport::Build(records);
  const WorkloadDiff diff = WorkloadDiff::Build(before, after, {});
  EXPECT_TRUE(diff.findings.empty());
  EXPECT_FALSE(diff.failed());
}

TEST(WorkloadDiffTest, DetectsInjectedPlanDrift) {
  std::vector<QueryLogRecord> base;
  base.push_back(MakeRecord("a(X)", "p1", 1.0));
  base.push_back(MakeRecord("b(X)", "p2", 1.0));
  std::vector<QueryLogRecord> drifted = base;
  drifted[1].plan_fingerprint = "deadbeef";  // the optimizer changed its mind
  const WorkloadDiff diff =
      WorkloadDiff::Build(WorkloadReport::Build(base),
                          WorkloadReport::Build(drifted), {});
  EXPECT_TRUE(diff.failed());
  EXPECT_EQ(diff.plan_drifts, 1u);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_EQ(diff.findings[0].kind, WorkloadDiff::Kind::kPlanDrift);
  EXPECT_EQ(diff.findings[0].signature, "prog.ldl|b(X)|bf");
  EXPECT_NE(diff.ToString().find("PLAN-DRIFT"), std::string::npos);
  EXPECT_NE(diff.ToString().find("deadbeef"), std::string::npos);
}

TEST(WorkloadDiffTest, DetectsOutcomeChange) {
  std::vector<QueryLogRecord> base;
  base.push_back(MakeRecord("a(X)", "p1", 1.0));
  std::vector<QueryLogRecord> broken;
  broken.push_back(MakeRecord("a(X)", "p1", 1.0, "resource_exhausted"));
  const WorkloadDiff diff =
      WorkloadDiff::Build(WorkloadReport::Build(base),
                          WorkloadReport::Build(broken), {});
  EXPECT_TRUE(diff.failed());
  EXPECT_EQ(diff.outcome_changes, 1u);
}

TEST(WorkloadDiffTest, LatencyRegressionRespectsThresholdAndFloor) {
  WorkloadThresholds thresholds;
  thresholds.latency_pct = 50.0;
  thresholds.min_ms = 1.0;

  std::vector<QueryLogRecord> base;
  base.push_back(MakeRecord("a(X)", "p1", 10.0));
  std::vector<QueryLogRecord> slow;
  slow.push_back(MakeRecord("a(X)", "p1", 20.0));  // +100% > +50%
  const WorkloadDiff regressed =
      WorkloadDiff::Build(WorkloadReport::Build(base),
                          WorkloadReport::Build(slow), thresholds);
  EXPECT_EQ(regressed.latency_regressions, 1u);
  EXPECT_TRUE(regressed.failed());

  std::vector<QueryLogRecord> mild;
  mild.push_back(MakeRecord("a(X)", "p1", 14.0));  // +40% < +50%
  EXPECT_FALSE(WorkloadDiff::Build(WorkloadReport::Build(base),
                                   WorkloadReport::Build(mild), thresholds)
                   .failed());

  // Micro-timings below the floor never gate, whatever the ratio.
  std::vector<QueryLogRecord> tiny_base;
  tiny_base.push_back(MakeRecord("a(X)", "p1", 0.01));
  std::vector<QueryLogRecord> tiny_slow;
  tiny_slow.push_back(MakeRecord("a(X)", "p1", 0.09));
  EXPECT_FALSE(WorkloadDiff::Build(WorkloadReport::Build(tiny_base),
                                   WorkloadReport::Build(tiny_slow),
                                   thresholds)
                   .failed());
}

TEST(WorkloadDiffTest, SignatureAppearDisappearIsInformational) {
  std::vector<QueryLogRecord> base;
  base.push_back(MakeRecord("a(X)", "p1", 1.0));
  std::vector<QueryLogRecord> other;
  other.push_back(MakeRecord("b(X)", "p2", 1.0));
  const WorkloadDiff diff =
      WorkloadDiff::Build(WorkloadReport::Build(base),
                          WorkloadReport::Build(other), {});
  EXPECT_EQ(diff.findings.size(), 2u);  // only-before + only-after
  EXPECT_FALSE(diff.failed());
}

}  // namespace
}  // namespace ldl
