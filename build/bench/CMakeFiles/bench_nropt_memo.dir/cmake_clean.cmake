file(REMOVE_RECURSE
  "CMakeFiles/bench_nropt_memo.dir/bench_nropt_memo.cc.o"
  "CMakeFiles/bench_nropt_memo.dir/bench_nropt_memo.cc.o.d"
  "bench_nropt_memo"
  "bench_nropt_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nropt_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
