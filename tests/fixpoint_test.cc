#include "engine/fixpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "base/strings.h"
#include "engine/query_eval.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

Program P(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

Literal L(const char* text) {
  auto r = ParseLiteral(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

constexpr const char* kAncestorRules = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
)";

constexpr const char* kSgRules = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

std::vector<Tuple> Sorted(const Relation& r) {
  std::vector<Tuple> out = r.tuples();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FixpointTest, TransitiveClosureOnChain) {
  Program p = P(kAncestorRules);
  Database db;
  Relation* par = db.GetOrCreate({"par", 2});
  for (int64_t i = 0; i < 5; ++i) {
    par->Insert({Term::MakeInt(i), Term::MakeInt(i + 1)});
  }
  Database scratch;
  FixpointStats stats;
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &scratch,
                              &stats, {})
                  .ok());
  // Chain of 6 nodes: 5+4+3+2+1 = 15 ancestor pairs.
  EXPECT_EQ(scratch.Find({"anc", 2})->size(), 15u);
  EXPECT_GT(stats.iterations, 1u);
}

TEST(FixpointTest, NaiveAndSemiNaiveAgree) {
  Program p = P(kAncestorRules);
  Database db;
  testing::MakeTreeParentData(2, 5, &db);
  Database s1, s2;
  FixpointStats st1, st2;
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kNaive, &db, &s1, &st1, {})
                  .ok());
  ASSERT_TRUE(
      EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &s2, &st2, {})
          .ok());
  EXPECT_EQ(Sorted(*s1.Find({"anc", 2})), Sorted(*s2.Find({"anc", 2})));
  // Semi-naive must do strictly less join work on a multi-level recursion.
  EXPECT_LT(st2.counters.tuples_examined, st1.counters.tuples_examined);
}

TEST(FixpointTest, MutualRecursionEvenOdd) {
  Program p = P(R"(
    even(X) <- zero(X).
    even(X) <- succ(Y, X), odd(Y).
    odd(X)  <- succ(Y, X), even(Y).
  )");
  Database db;
  db.GetOrCreate({"zero", 1})->Insert({Term::MakeInt(0)});
  Relation* succ = db.GetOrCreate({"succ", 2});
  for (int64_t i = 0; i < 10; ++i) {
    succ->Insert({Term::MakeInt(i), Term::MakeInt(i + 1)});
  }
  Database scratch;
  FixpointStats stats;
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &scratch,
                              &stats, {})
                  .ok());
  EXPECT_EQ(scratch.Find({"even", 1})->size(), 6u);  // 0,2,4,6,8,10
  EXPECT_EQ(scratch.Find({"odd", 1})->size(), 5u);   // 1,3,5,7,9
}

TEST(FixpointTest, StratifiedNegation) {
  Program p = P(R"(
    reach(X) <- source(X).
    reach(Y) <- reach(X), edge(X, Y).
    node(X) <- edge(X, Y).
    node(Y) <- edge(X, Y).
    unreachable(X) <- node(X), not reach(X).
  )");
  Database db;
  Relation* edge = db.GetOrCreate({"edge", 2});
  edge->Insert({Term::MakeInt(1), Term::MakeInt(2)});
  edge->Insert({Term::MakeInt(2), Term::MakeInt(3)});
  edge->Insert({Term::MakeInt(4), Term::MakeInt(5)});
  db.GetOrCreate({"source", 1})->Insert({Term::MakeInt(1)});
  Database scratch;
  FixpointStats stats;
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &scratch,
                              &stats, {})
                  .ok());
  EXPECT_EQ(scratch.Find({"reach", 1})->size(), 3u);        // 1,2,3
  EXPECT_EQ(scratch.Find({"unreachable", 1})->size(), 2u);  // 4,5
}

TEST(FixpointTest, NonStratifiedRejected) {
  Program p = P("win(X) <- move(X, Y), not win(Y).");
  Database db, scratch;
  FixpointStats stats;
  Status st =
      EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &scratch, &stats, {});
  EXPECT_FALSE(st.ok());
}

TEST(FixpointTest, IterationGuardTripsOnUnsafeArithmetic) {
  // nat(X+1) <- nat(X): infinite — the guard must stop it.
  Program p = P(R"(
    nat(0).
    nat(Y) <- nat(X), Y = X + 1.
  )");
  // Move the inline fact into the database.
  Database db, scratch;
  Program rules;
  for (const Rule& r : p.rules()) rules.AddRule(r);
  for (const Literal& f : p.facts()) ASSERT_TRUE(db.AddFact(f).ok());
  // nat must count as derived; re-add the fact as a bodiless rule.
  rules.AddRule(Rule(L("nat(0)"), {}));
  FixpointOptions options;
  options.max_iterations = 50;
  FixpointStats stats;
  Status st = EvaluateProgram(rules, RecursionMethod::kSemiNaive, &db,
                              &scratch, &stats, options);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
}

TEST(FixpointTest, ComplexTermsFlowThroughRecursion) {
  // Build lists by recursion over a bounded set: path accumulation.
  Program p = P(R"(
    path(X, Y, [X, Y]) <- edge(X, Y).
    path(X, Z, [X | P]) <- edge(X, Y), path(Y, Z, P).
  )");
  Database db;
  Relation* edge = db.GetOrCreate({"edge", 2});
  edge->Insert({Term::MakeInt(1), Term::MakeInt(2)});
  edge->Insert({Term::MakeInt(2), Term::MakeInt(3)});
  Database scratch;
  FixpointStats stats;
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &scratch,
                              &stats, {})
                  .ok());
  Relation* path = scratch.Find({"path", 3});
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->size(), 3u);
  bool found = false;
  for (const Tuple& t : path->tuples()) {
    if (t[2].ToString() == "[1, 2, 3]") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FixpointTest, RuleOrderOverrideChangesWorkNotAnswers) {
  Program p = P("q(X, Z) <- a(X, Y), b(Y, Z), c(Z).");
  Database db;
  testing::MakeRandomRelation("a", 2, 200, 50, 1, &db);
  testing::MakeRandomRelation("b", 2, 200, 50, 2, &db);
  testing::MakeRandomRelation("c", 1, 10, 50, 3, &db);

  Database s1, s2;
  FixpointStats st1, st2;
  ASSERT_TRUE(
      EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &s1, &st1, {})
          .ok());
  FixpointOptions options;
  options.rule_orders[0] = {2, 1, 0};  // start from the selective c
  ASSERT_TRUE(EvaluateProgram(p, RecursionMethod::kSemiNaive, &db, &s2, &st2,
                              options)
                  .ok());
  EXPECT_EQ(Sorted(*s1.Find({"q", 2})), Sorted(*s2.Find({"q", 2})));
  EXPECT_NE(st1.counters.tuples_examined, st2.counters.tuples_examined);
}

class SgMethodsTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

// Property: all four methods give identical answers on bound sg queries,
// across a sweep of tree shapes.
TEST_P(SgMethodsTest, AllMethodsAgreeOnBoundQuery) {
  auto [fanout, depth] = GetParam();
  Program p = P(kSgRules);
  Database db;
  size_t nodes = testing::MakeSameGenerationData(fanout, depth, &db);
  ASSERT_GT(nodes, 0u);
  // Query: same generation of the first leaf-level node (bound, free).
  // Node ids: the last level starts after all previous levels.
  int64_t probe = static_cast<int64_t>(nodes - 1);
  Literal goal = Literal::Make(
      "sg", {Term::MakeInt(probe), Term::MakeVariable("Y")});

  QueryEvalOptions options;
  options.counting_fallback = false;
  auto naive = EvaluateQuery(p, &db, goal, RecursionMethod::kNaive, options);
  auto semi = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, options);
  auto magic = EvaluateQuery(p, &db, goal, RecursionMethod::kMagic, options);
  auto counting =
      EvaluateQuery(p, &db, goal, RecursionMethod::kCounting, options);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(semi.ok()) << semi.status();
  ASSERT_TRUE(magic.ok()) << magic.status();
  ASSERT_TRUE(counting.ok()) << counting.status();

  EXPECT_EQ(Sorted(naive->answers), Sorted(semi->answers));
  EXPECT_EQ(Sorted(semi->answers), Sorted(magic->answers));
  EXPECT_EQ(Sorted(magic->answers), Sorted(counting->answers));
  EXPECT_FALSE(magic->answers.empty());

  // The focused methods must examine fewer tuples than full evaluation.
  EXPECT_LE(magic->stats.counters.tuples_examined,
            semi->stats.counters.tuples_examined);
}

INSTANTIATE_TEST_SUITE_P(
    TreeShapes, SgMethodsTest,
    ::testing::Values(std::make_tuple(2, 3), std::make_tuple(2, 5),
                      std::make_tuple(3, 3), std::make_tuple(3, 4),
                      std::make_tuple(4, 3), std::make_tuple(5, 2)));

TEST(MagicTest, TransitiveClosureBoundQueryTouchesLess) {
  Program p = P(kAncestorRules);
  Database db;
  testing::MakeTreeParentData(3, 6, &db);
  Literal goal = L("anc(5, Y)");

  auto semi = EvaluateQuery(p, &db, goal, RecursionMethod::kSemiNaive, {});
  auto magic = EvaluateQuery(p, &db, goal, RecursionMethod::kMagic, {});
  ASSERT_TRUE(semi.ok()) << semi.status();
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(Sorted(semi->answers), Sorted(magic->answers));
  EXPECT_LT(magic->stats.counters.tuples_examined,
            semi->stats.counters.tuples_examined / 2);
}

TEST(CountingTest, FallsBackOnCyclicData) {
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Z), tc(Z, Y).
  )");
  Database db;
  testing::MakeCycle(10, &db);
  QueryEvalOptions options;
  options.fixpoint.max_iterations = 500;
  auto result =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kCounting, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->method_used, RecursionMethod::kMagic);
  EXPECT_FALSE(result->note.empty());
  EXPECT_EQ(result->answers.size(), 10u);
}

TEST(CountingTest, InapplicableNonLinearFallsBack) {
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- tc(X, Z), tc(Z, Y).
  )");
  Database db;
  testing::MakeRandomDag(30, 2, 7, &db);
  auto result =
      EvaluateQuery(p, &db, L("tc(0, Y)"), RecursionMethod::kCounting, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->method_used, RecursionMethod::kMagic);
}

TEST(QueryEvalTest, BaseRelationQueryNeedsNoRules) {
  Program p;
  Database db;
  testing::MakeTreeParentData(2, 3, &db);
  auto result =
      EvaluateQuery(p, &db, L("par(1, Y)"), RecursionMethod::kSemiNaive, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);
}

/// Golden-value test for the per-iteration fixpoint telemetry: a 4-node
/// cycle (1→2→3→4→1) closed transitively, evaluated under all four
/// recursion methods with record_iterations on. The data is tiny and fully
/// deterministic, so the exact round-by-round delta trajectory is part of
/// the contract: both disciplines record their final empty round, naive
/// additionally re-derives everything each round, and the rewrite-based
/// methods
/// report their rewritten cliques under the rewrite's method label
/// (counting falls back to magic on cyclic data, so its rounds are
/// magic's).
TEST(QueryEvalTest, IterationTelemetryGoldenValuesOnCycle) {
  Program p = P(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Y) <- edge(X, Z), tc(Z, Y).
  )");
  Database db;
  Relation* edge = db.GetOrCreate({"edge", 2});
  for (int64_t i = 1; i <= 4; ++i) {
    edge->Insert({Term::MakeInt(i), Term::MakeInt(i % 4 + 1)});
  }
  QueryEvalOptions options;
  options.fixpoint.record_iterations = true;

  auto run = [&](RecursionMethod method) {
    auto result = EvaluateQuery(p, &db, L("tc(1, Y)"), method, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  };
  auto trajectory = [](const QueryResult& r) {
    // (clique, method, iteration, delta) rows; wall_ms is unpinnable.
    std::vector<std::string> rows;
    for (const FixpointIteration& it : r.stats.per_iteration) {
      rows.push_back(StrCat(it.clique, " ", it.method, " #", it.iteration,
                            " +", it.delta_tuples));
    }
    return rows;
  };

  // Naive: every round recomputes everything; deltas 4,4,4,4 then the
  // empty fixpoint-detection round is recorded too. All answers: 16 pairs.
  QueryResult naive = run(RecursionMethod::kNaive);
  EXPECT_EQ(naive.answers.size(), 4u);
  EXPECT_EQ(trajectory(naive),
            (std::vector<std::string>{
                "tc/2 naive #1 +4", "tc/2 naive #2 +4", "tc/2 naive #3 +4",
                "tc/2 naive #4 +4", "tc/2 naive #5 +0"}));

  // Semi-naive: the exit-rule seeding is not a recorded round, so the
  // rounds are the three delta joins (path lengths 2..4) plus the empty
  // round that detects convergence.
  QueryResult seminaive = run(RecursionMethod::kSemiNaive);
  EXPECT_EQ(seminaive.answers.size(), 4u);
  EXPECT_EQ(trajectory(seminaive),
            (std::vector<std::string>{
                "tc/2 seminaive #1 +4", "tc/2 seminaive #2 +4",
                "tc/2 seminaive #3 +4", "tc/2 seminaive #4 +0"}));

  // Magic: the rewritten program's cliques carry the magic label. With the
  // query bound to node 1, the magic set floods the whole cycle.
  QueryResult magic = run(RecursionMethod::kMagic);
  EXPECT_EQ(magic.answers.size(), 4u);
  ASSERT_FALSE(magic.stats.per_iteration.empty());
  for (const FixpointIteration& it : magic.stats.per_iteration) {
    EXPECT_EQ(it.method, "magic");
  }
  const std::vector<std::string> magic_rows = trajectory(magic);

  // Counting: cyclic data trips the ascent guard, so evaluation falls back
  // to magic — identical answers AND an identical round trajectory, every
  // row labeled magic (the rounds belong to the fallback evaluation).
  QueryResult counting = run(RecursionMethod::kCounting);
  EXPECT_EQ(counting.method_used, RecursionMethod::kMagic);
  EXPECT_EQ(counting.answers.size(), 4u);
  EXPECT_EQ(trajectory(counting), magic_rows);
}

TEST(QueryEvalTest, ReachableSubprogramPrunesUnrelatedRules) {
  Program p = P(R"(
    a(X) <- base1(X).
    b(X) <- base2(X).
    c(X) <- a(X).
  )");
  Program sub = ReachableSubprogram(p, L("c(X)"));
  EXPECT_EQ(sub.rules().size(), 2u);
  EXPECT_TRUE(sub.IsDerived({"c", 1}));
  EXPECT_TRUE(sub.IsDerived({"a", 1}));
  EXPECT_FALSE(sub.IsDerived({"b", 1}));
}

}  // namespace
}  // namespace ldl
