#include "ast/term.h"

#include <sstream>

#include "base/hash.h"

namespace ldl {

namespace {
const std::vector<Term>& EmptyArgs() {
  static const auto* empty = new std::vector<Term>();
  return *empty;
}

// List constructors: '.'(Head, Tail) cons cells terminated by the symbol [].
constexpr char kConsFunctor[] = ".";
constexpr char kNilSymbol[] = "[]";
}  // namespace

Term Term::MakeVariable(std::string name) {
  return Term(TermKind::kVariable, std::move(name));
}

Term Term::MakeInt(int64_t value) {
  Term t(TermKind::kInt, "");
  t.int_value_ = value;
  return t;
}

Term Term::MakeReal(double value) {
  Term t(TermKind::kReal, "");
  t.real_value_ = value;
  return t;
}

Term Term::MakeString(std::string value) {
  return Term(TermKind::kString, std::move(value));
}

Term Term::MakeSymbol(std::string name) {
  return Term(TermKind::kSymbol, std::move(name));
}

Term Term::MakeFunction(std::string functor, std::vector<Term> args) {
  Term t(TermKind::kFunction, std::move(functor));
  t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
  return t;
}

Term Term::MakeList(const std::vector<Term>& items) {
  return MakeList(items, MakeSymbol(kNilSymbol));
}

Term Term::MakeList(const std::vector<Term>& items, Term tail) {
  Term list = std::move(tail);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    list = MakeFunction(kConsFunctor, {*it, std::move(list)});
  }
  return list;
}

const std::vector<Term>& Term::args() const {
  return args_ ? *args_ : EmptyArgs();
}

bool Term::IsGround() const {
  switch (kind_) {
    case TermKind::kVariable:
      return false;
    case TermKind::kFunction:
      for (const Term& a : args()) {
        if (!a.IsGround()) return false;
      }
      return true;
    default:
      return true;
  }
}

void Term::CollectVariables(std::vector<std::string>* out) const {
  if (kind_ == TermKind::kVariable) {
    out->push_back(text_);
  } else if (kind_ == TermKind::kFunction) {
    for (const Term& a : args()) a.CollectVariables(out);
  }
}

bool Term::ContainsVariable(const std::string& name) const {
  if (kind_ == TermKind::kVariable) return text_ == name;
  if (kind_ == TermKind::kFunction) {
    for (const Term& a : args()) {
      if (a.ContainsVariable(name)) return true;
    }
  }
  return false;
}

bool Term::HasStrictSubterm(const Term& other) const {
  if (kind_ != TermKind::kFunction) return false;
  for (const Term& a : args()) {
    if (a == other || a.HasStrictSubterm(other)) return true;
  }
  return false;
}

size_t Term::Size() const {
  if (kind_ != TermKind::kFunction) return 1;
  size_t n = 1;
  for (const Term& a : args()) n += a.Size();
  return n;
}

size_t Term::Depth() const {
  if (kind_ != TermKind::kFunction) return 1;
  size_t d = 0;
  for (const Term& a : args()) d = std::max(d, a.Depth());
  return d + 1;
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TermKind::kInt:
      return int_value_ == other.int_value_;
    case TermKind::kReal:
      return real_value_ == other.real_value_;
    case TermKind::kVariable:
    case TermKind::kString:
    case TermKind::kSymbol:
      return text_ == other.text_;
    case TermKind::kFunction: {
      if (text_ != other.text_) return false;
      const auto& a = args();
      const auto& b = other.args();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case TermKind::kInt:
      return int_value_ < other.int_value_;
    case TermKind::kReal:
      return real_value_ < other.real_value_;
    case TermKind::kVariable:
    case TermKind::kString:
    case TermKind::kSymbol:
      return text_ < other.text_;
    case TermKind::kFunction: {
      if (text_ != other.text_) return text_ < other.text_;
      const auto& a = args();
      const auto& b = other.args();
      if (a.size() != b.size()) return a.size() < b.size();
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] < b[i]) return true;
        if (b[i] < a[i]) return false;
      }
      return false;
    }
  }
  return false;
}

size_t Term::Hash() const {
  size_t seed = static_cast<size_t>(kind_);
  switch (kind_) {
    case TermKind::kInt:
      HashValue(&seed, int_value_);
      break;
    case TermKind::kReal:
      HashValue(&seed, real_value_);
      break;
    case TermKind::kVariable:
    case TermKind::kString:
    case TermKind::kSymbol:
      HashValue(&seed, text_);
      break;
    case TermKind::kFunction:
      HashValue(&seed, text_);
      for (const Term& a : args()) HashCombine(&seed, a.Hash());
      break;
  }
  return seed;
}

namespace {

// Renders a cons-cell chain using list sugar; returns false if `t` is not a
// cons cell.
bool TryPrintList(const Term& t, std::ostream& os);

bool IsInfixFunctor(const std::string& f, size_t arity) {
  return arity == 2 &&
         (f == "+" || f == "-" || f == "*" || f == "/" || f == "mod");
}

// `nested` parenthesizes infix arithmetic when it appears inside another
// term, so X + 1 prints bare but f((X + 1)) and (X + 1) * 2 stay readable.
void PrintTerm(const Term& t, std::ostream& os, bool nested = false) {
  switch (t.kind()) {
    case TermKind::kVariable:
    case TermKind::kSymbol:
      os << t.text();
      return;
    case TermKind::kInt:
      os << t.int_value();
      return;
    case TermKind::kReal:
      os << t.real_value();
      return;
    case TermKind::kString:
      os << '"' << t.text() << '"';
      return;
    case TermKind::kFunction: {
      if (TryPrintList(t, os)) return;
      if (IsInfixFunctor(t.text(), t.arity())) {
        if (nested) os << '(';
        PrintTerm(t.args()[0], os, true);
        os << ' ' << t.text() << ' ';
        PrintTerm(t.args()[1], os, true);
        if (nested) os << ')';
        return;
      }
      os << t.text() << '(';
      bool first = true;
      for (const Term& a : t.args()) {
        if (!first) os << ", ";
        first = false;
        PrintTerm(a, os, true);
      }
      os << ')';
      return;
    }
  }
}

bool TryPrintList(const Term& t, std::ostream& os) {
  if (!(t.kind() == TermKind::kFunction && t.text() == kConsFunctor &&
        t.arity() == 2)) {
    return false;
  }
  os << '[';
  const Term* cur = &t;
  bool first = true;
  while (true) {
    if (!first) os << ", ";
    first = false;
    PrintTerm(cur->args()[0], os);
    const Term& tail = cur->args()[1];
    if (tail.kind() == TermKind::kSymbol && tail.text() == kNilSymbol) {
      break;
    }
    if (tail.kind() == TermKind::kFunction && tail.text() == kConsFunctor &&
        tail.arity() == 2) {
      cur = &tail;
      continue;
    }
    os << " | ";
    PrintTerm(tail, os);
    break;
  }
  os << ']';
  return true;
}

}  // namespace

std::string Term::ToString() const {
  std::ostringstream os;
  PrintTerm(*this, os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  PrintTerm(term, os);
  return os;
}

}  // namespace ldl
