#include "optimizer/kbz.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "engine/builtins.h"
#include "obs/search_trace.h"

namespace ldl {

namespace {

/// Union-find for Kruskal.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

/// A maximal run of relations whose internal order is already fixed.
/// C(S1 S2) = C(S1) + T(S1) C(S2); T(S1 S2) = T(S1) T(S2);
/// rank(S) = (T(S) - 1) / C(S).
struct Module {
  std::vector<size_t> items;  // indices into the relation list
  double t = 1;
  double c = 0;

  double Rank() const { return c > 0 ? (t - 1) / c : -1e300; }
};

Module MergeModules(const Module& a, const Module& b) {
  Module m;
  m.items = a.items;
  m.items.insert(m.items.end(), b.items.begin(), b.items.end());
  m.c = a.c + a.t * b.c;
  m.t = a.t * b.t;
  return m;
}

class KbzStrategy : public JoinOrderStrategy {
 public:
  explicit KbzStrategy(const StrategyOptions& options) : options_(options) {}

  std::string name() const override { return "kbz"; }

  OrderResult FindOrder(const std::vector<ConjunctItem>& items,
                        const BoundVars& initial, const CostModel& model,
                        SearchTracer* trace) override {
    OrderResult best;
    SearchTracer* st =
        (trace != nullptr && trace->enabled()) ? trace : nullptr;

    // Partition: relations participate in the query graph; builtins and
    // negated literals are re-inserted greedily later.
    std::vector<size_t> rel_idx, other_idx;
    for (size_t i = 0; i < items.size(); ++i) {
      const Literal& lit = items[i].literal;
      if (lit.IsBuiltin() || lit.negated()) {
        other_idx.push_back(i);
      } else {
        rel_idx.push_back(i);
      }
    }
    const size_t n = rel_idx.size();
    if (n == 0) {
      // Pure builtin conjunct: greedy insertion only.
      std::vector<size_t> order = GreedyComplete({}, other_idx, items,
                                                 initial);
      SequenceCost sc = model.CostSequence(items, order, initial);
      if (st != nullptr) {
        st->RecordCandidate(order, sc.cost,
                            sc.safe ? CandidateDisposition::kKept
                                    : CandidateDisposition::kPrunedUnsafe,
                            "pure-builtin conjunct");
      }
      best.order = order;
      best.cost = sc.cost;
      best.out_card = sc.out_card;
      best.safe = sc.safe;
      best.cost_evaluations = 1;
      return best;
    }

    // Effective cardinalities under the initial bindings (bound arguments
    // act as selections).
    std::vector<double> card(n);
    for (size_t a = 0; a < n; ++a) {
      const ConjunctItem& item = items[rel_idx[a]];
      Adornment adn = AdornLiteral(item.literal, initial);
      card[a] =
          std::max(item.estimate ? item.estimate(adn, 1.0).card : 1.0, 1e-9);
    }

    // Pairwise selectivities from shared variables.
    std::vector<std::vector<double>> sel(n, std::vector<double>(n, 1.0));
    {
      // var -> list of (relation position a, column, distinct count)
      std::map<std::string, std::vector<std::pair<size_t, double>>> where;
      for (size_t a = 0; a < n; ++a) {
        const ConjunctItem& item = items[rel_idx[a]];
        for (size_t col = 0; col < item.literal.arity(); ++col) {
          std::vector<std::string> vars;
          item.literal.args()[col].CollectVariables(&vars);
          double d = col < item.distinct.size()
                         ? std::max(1.0, item.distinct[col])
                         : std::max(1.0, item.base_cardinality);
          for (const auto& v : vars) where[v].push_back({a, d});
        }
      }
      for (const auto& [v, occs] : where) {
        for (size_t x = 0; x < occs.size(); ++x) {
          for (size_t y = x + 1; y < occs.size(); ++y) {
            auto [a, da] = occs[x];
            auto [b, db] = occs[y];
            if (a == b) continue;
            sel[a][b] = sel[b][a] =
                std::min(sel[a][b], 1.0 / std::max(da, db));
          }
        }
      }
    }

    // Maximum-selectivity spanning tree (keep the most selective edges):
    // Kruskal over edges sorted by ascending selectivity; then connect
    // remaining components with selectivity-1 (cross product) edges.
    std::vector<std::vector<size_t>> adj(n);
    {
      struct Edge {
        size_t a, b;
        double s;
      };
      std::vector<Edge> edges;
      for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
          if (sel[a][b] < 1.0) edges.push_back({a, b, sel[a][b]});
        }
      }
      std::sort(edges.begin(), edges.end(),
                [](const Edge& x, const Edge& y) { return x.s < y.s; });
      Dsu dsu(n);
      for (const Edge& e : edges) {
        if (dsu.Union(e.a, e.b)) {
          adj[e.a].push_back(e.b);
          adj[e.b].push_back(e.a);
        }
      }
      for (size_t a = 1; a < n; ++a) {
        if (dsu.Union(0, a)) {
          adj[0].push_back(a);
          adj[a].push_back(0);
        }
      }
    }

    // Try each root; order the tree by ASI ranks; re-insert the builtins;
    // keep the best order under the real cost model.
    size_t evals = 0;
    for (size_t root = 0; root < n; ++root) {
      std::vector<size_t> tree_order = OrderForRoot(root, adj, card, sel);
      std::vector<size_t> mapped;
      mapped.reserve(n);
      for (size_t a : tree_order) mapped.push_back(rel_idx[a]);
      std::vector<size_t> order =
          GreedyComplete(mapped, other_idx, items, initial);
      SequenceCost sc = model.CostSequence(items, order, initial);
      ++evals;
      const bool improved = sc.safe && sc.cost < best.cost;
      if (st != nullptr) {
        // One ASI-ranked candidate per root of the spanning tree.
        st->RecordCandidate(order, sc.cost,
                            !sc.safe   ? CandidateDisposition::kPrunedUnsafe
                            : improved ? CandidateDisposition::kKept
                                       : CandidateDisposition::kDominated);
      }
      if (improved) {
        best.order = order;
        best.cost = sc.cost;
        best.out_card = sc.out_card;
        best.safe = true;
      }
    }
    best.cost_evaluations = evals;
    return best;
  }

 private:
  // The IK/KBZ normalize-and-merge: returns the relation positions in rank
  // order consistent with the rooted tree's precedence constraints.
  std::vector<size_t> OrderForRoot(size_t root,
                                   const std::vector<std::vector<size_t>>& adj,
                                   const std::vector<double>& card,
                                   const std::vector<std::vector<double>>& sel) {
    std::vector<Module> chain = Solve(root, SIZE_MAX, adj, card, sel);
    std::vector<size_t> order;
    for (const Module& m : chain) {
      order.insert(order.end(), m.items.begin(), m.items.end());
    }
    return order;
  }

  std::vector<Module> Solve(size_t v, size_t parent,
                            const std::vector<std::vector<size_t>>& adj,
                            const std::vector<double>& card,
                            const std::vector<std::vector<double>>& sel) {
    // This node's own module: T = sel(v, parent) * card(v).
    Module own;
    own.items = {v};
    own.t = (parent == SIZE_MAX ? card[v] : sel[v][parent] * card[v]);
    own.t = std::max(own.t, 1e-12);
    own.c = own.t;

    // Children chains, merged in ascending rank order.
    std::vector<Module> merged;
    for (size_t child : adj[v]) {
      if (child == parent) continue;
      std::vector<Module> chain = Solve(child, v, adj, card, sel);
      std::vector<Module> next;
      next.reserve(merged.size() + chain.size());
      size_t i = 0, j = 0;
      while (i < merged.size() && j < chain.size()) {
        if (merged[i].Rank() <= chain[j].Rank()) {
          next.push_back(std::move(merged[i++]));
        } else {
          next.push_back(std::move(chain[j++]));
        }
      }
      while (i < merged.size()) next.push_back(std::move(merged[i++]));
      while (j < chain.size()) next.push_back(std::move(chain[j++]));
      merged = std::move(next);
    }

    // Normalize: the first module must not have a smaller rank than its
    // predecessor (v's module) — merge violations into v's module.
    std::vector<Module> out;
    out.push_back(std::move(own));
    for (Module& m : merged) {
      if (m.Rank() < out.back().Rank()) {
        out.back() = MergeModules(out.back(), m);
        // Merging may create a new violation with the previous module.
        while (out.size() >= 2 &&
               out.back().Rank() < out[out.size() - 2].Rank()) {
          Module merged_pair =
              MergeModules(out[out.size() - 2], out.back());
          out.pop_back();
          out.back() = std::move(merged_pair);
        }
      } else {
        out.push_back(std::move(m));
      }
    }
    return out;
  }

  // Interleaves the non-relation items (builtins, negation) into the
  // relation order at the earliest position where they are computable.
  std::vector<size_t> GreedyComplete(const std::vector<size_t>& rel_order,
                                     std::vector<size_t> pending,
                                     const std::vector<ConjunctItem>& items,
                                     const BoundVars& initial) {
    std::vector<size_t> order;
    BoundVars bound = initial;
    auto flush = [&]() {
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t k = 0; k < pending.size(); ++k) {
          const Literal& lit = items[pending[k]].literal;
          bool ready;
          if (lit.IsBuiltin()) {
            ready = BuiltinComputable(lit,
                                      bound.IsTermBound(lit.args()[0]),
                                      bound.IsTermBound(lit.args()[1]));
          } else {  // negated literal: needs all arguments bound
            ready = true;
            for (const Term& a : lit.args()) {
              ready = ready && bound.IsTermBound(a);
            }
          }
          if (ready) {
            order.push_back(pending[k]);
            PropagateBindings(lit, &bound);
            pending.erase(pending.begin() + k);
            progress = true;
            break;
          }
        }
      }
    };
    flush();
    for (size_t idx : rel_order) {
      order.push_back(idx);
      PropagateBindings(items[idx].literal, &bound);
      flush();
    }
    // Anything still pending is not computable in any completion of this
    // order; append it so CostSequence reports the unsafety.
    for (size_t idx : pending) order.push_back(idx);
    return order;
  }

  StrategyOptions options_;
};

}  // namespace

std::unique_ptr<JoinOrderStrategy> MakeKbzStrategy(
    const StrategyOptions& options) {
  return std::make_unique<KbzStrategy>(options);
}

}  // namespace ldl
