file(REMOVE_RECURSE
  "libldl_safety.a"
)
