#ifndef LDLOPT_OBS_FEEDBACK_H_
#define LDLOPT_OBS_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "graph/binding.h"
#include "obs/metrics.h"
#include "optimizer/cost_model.h"
#include "storage/statistics.h"

namespace ldl {

/// The feedback loop that closes observation back into planning.
///
/// Every executed query measures real cardinalities — the goal's answer
/// count under its binding, the fixpoint sizes of derived predicates, the
/// per-(predicate, adornment) actuals an EXPLAIN ANALYZE harvests
/// (obs/calibration.h). Until now those measurements were reported and then
/// discarded. The **StatisticsCatalog** accumulates them across queries
/// under exponential decay; the **DriftDetector** compares the accumulated
/// truth against the optimizer's current `Statistics` and, when the two
/// disagree past a q-error threshold on a hot predicate, bumps the
/// statistics epoch — the invalidation signal a plan cache keyed by
/// (signature, adornment, epoch) consumes (ROADMAP item 3). With
/// `OptimizerOptions::feedback` set, planning itself consults the catalog
/// as a blended measured-over-estimated overlay.

/// Tuning knobs of the catalog and the drift gate.
struct FeedbackOptions {
  /// Per-merge exponential decay: an entry's weight is multiplied by this
  /// before each new observation folds in, so a stale measurement's
  /// influence halves roughly every log(0.5)/log(decay) ~ 6.6 observations
  /// at the default.
  double decay = 0.9;
  /// Confidence ramp of the blend: a catalog entry with accumulated weight
  /// w contributes w / (w + blend_weight) of the blended cardinality, the
  /// estimate the rest. One observation -> 1/3 measured; weight -> inf
  /// converges to measured-only.
  double blend_weight = 2.0;
  /// Adorned (per-binding) entries override the estimate outright instead
  /// of blending (there is no catalog estimate to blend against); they must
  /// have at least this much accumulated weight first.
  double min_weight = 0.5;
  /// Drift gate: an all-free entry for a predicate with real statistics
  /// whose q-error (max(est/act, act/est)) crosses this trips the detector.
  double drift_q_threshold = 4.0;
  /// An entry is "hot" (eligible for the drift gate) once it has this many
  /// observations. 1 by default so a single analyzed pass — or an imported
  /// catalog — is already actionable.
  uint64_t hot_observations = 1;
  /// Hard cap on distinct (predicate, adornment) keys; observations for new
  /// keys past the cap are dropped (counted in dropped_observations).
  size_t max_entries = 4096;
};

/// One accumulated measurement stream.
struct CatalogEntry {
  double card = 0;       ///< decayed mean of the observed cardinalities
  double weight = 0;     ///< sum of decayed observation weights (<= 1/(1-decay))
  uint64_t observations = 0;
  uint64_t first_epoch = 0;  ///< stats epoch of the first observation
  uint64_t last_epoch = 0;   ///< stats epoch of the latest observation
};

/// Accumulates measured per-(predicate, adornment) cardinalities across
/// queries. Thread-safe: the serving thread renders /stats while the query
/// thread observes. Cardinalities follow MeasuredStatistics semantics —
/// per binding instance, so the all-free entry is the predicate's total
/// size.
class StatisticsCatalog {
 public:
  explicit StatisticsCatalog(FeedbackOptions options = {})
      : options_(options) {}

  /// Folds one measured cardinality into the entry for (pred, adn):
  ///   card   <- (decay * weight * card + observed) / (decay * weight + 1)
  ///   weight <- decay * weight + 1
  /// i.e. an exponentially-decayed running mean; `epoch` stamps the
  /// observation's statistics generation.
  void Observe(const PredicateId& pred, const Adornment& adn, double card,
               uint64_t epoch);

  /// Folds every entry of a harvested overlay (HarvestMeasuredStatistics).
  void ObserveMeasured(const MeasuredStatistics& measured, uint64_t epoch);

  /// Copies the entry for (pred, adn) into *out; false when never observed.
  bool Lookup(const PredicateId& pred, const Adornment& adn,
              CatalogEntry* out) const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  uint64_t total_observations() const;
  uint64_t dropped_observations() const;

  /// Sorted snapshot of every (key, entry) pair.
  std::vector<std::pair<AdornedPredicate, CatalogEntry>> Entries() const;

  /// The planning overlay: for all-free entries of predicates `stats`
  /// really knows, the blended cardinality
  ///   blend * measured + (1 - blend) * estimate,  blend = w / (w + k);
  /// everything else (adorned bindings, derived predicates) is measured-only
  /// once past min_weight. Predicates the catalog never observed are simply
  /// absent — MeasuredStatistics::Find returns nullptr and the cost model
  /// keeps its estimate, which is the required fallback behavior.
  MeasuredStatistics BlendedOverlay(const Statistics& stats) const;

  /// Schema-stable JSON export (version, options, sorted entries):
  ///   {"version":1,"decay":0.9,"entries":[{"predicate":"par","arity":2,
  ///    "adornment":"ff","card":8,"weight":1,"observations":1,
  ///    "first_epoch":1,"last_epoch":1}]}
  /// Doubles round-trip exactly; entries are sorted by (predicate,
  /// adornment) so equal catalogs serialize byte-identically.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

  /// Parses a WriteJson export. Unknown keys are ignored (forward
  /// compatibility); a version above 1 is rejected. The catalog's own
  /// options_ are kept — "decay" in the file is informational.
  Status MergeJson(const std::string& text);

  Status ExportFile(const std::string& path) const;
  Status ImportFile(const std::string& path);

  /// Gauges: feedback.catalog_entries, feedback.observations,
  /// feedback.dropped_observations. No-op on nullptr.
  void ExportTo(MetricsRegistry* metrics) const;

  const FeedbackOptions& options() const { return options_; }

 private:
  mutable std::mutex mu_;
  FeedbackOptions options_;
  /// Ordered so snapshots and exports are deterministically sorted.
  std::map<AdornedPredicate, CatalogEntry> entries_;
  uint64_t total_observations_ = 0;
  uint64_t dropped_observations_ = 0;
};

/// One detected estimate-vs-measurement divergence.
struct DriftEvent {
  AdornedPredicate key;
  double measured = 0;   ///< catalog cardinality at detection time
  double estimated = 0;  ///< Statistics cardinality it diverged from
  double q_error = 1;
  uint64_t old_epoch = 0;  ///< stats epoch before the bump
  uint64_t new_epoch = 0;  ///< stats epoch after the bump
};

/// Compares catalog truth against the optimizer's current statistics and
/// bumps the statistics epoch when they diverge. Only *hot all-free*
/// entries of predicates `stats` actually has rows for participate:
/// derived predicates cost through the default-stats fallback, so their
/// "estimate" is a placeholder that would perpetually trip the gate.
///
/// Each key trips at most once per statistics epoch — after the bump the
/// epoch differs, and the owner is expected to refresh statistics (which
/// collapses the q-error) before the key can trip again.
class DriftDetector {
 public:
  explicit DriftDetector(FeedbackOptions options = {}) : options_(options) {}

  /// Scans `catalog` against `*stats`. When at least one hot all-free
  /// entry's q-error crosses drift_q_threshold, bumps stats->epoch() by one
  /// (a single bump no matter how many keys tripped), appends DriftEvents,
  /// and increments the feedback.drift_events counter. Returns the number
  /// of keys that newly tripped (0 = no drift).
  size_t Check(const StatisticsCatalog& catalog, Statistics* stats,
               MetricsRegistry* metrics = nullptr);

  uint64_t drift_events() const;
  /// Max q-error over the checked keys of the most recent Check (1 when
  /// nothing was checked).
  double last_max_q_error() const;
  /// Bounded event history, oldest first (the /stats "epoch history").
  std::vector<DriftEvent> history() const;

  const FeedbackOptions& options() const { return options_; }

 private:
  static constexpr size_t kMaxHistory = 64;

  mutable std::mutex mu_;
  FeedbackOptions options_;
  uint64_t drift_events_ = 0;
  double last_max_q_ = 1.0;
  /// Re-trip dedup: the epoch a key last tripped at (post-bump value).
  std::map<AdornedPredicate, uint64_t> tripped_epoch_;
  std::vector<DriftEvent> history_;
};

/// JSON body of the stats server's /stats route: the current statistics
/// epoch, catalog entries with their live estimate and q-error, predicates
/// the statistics know but the catalog has never observed (coverage gaps),
/// and the drift-event history. Any of the pointers may be null.
std::string RenderStatsJson(const StatisticsCatalog* catalog,
                            const DriftDetector* drift,
                            const Statistics* stats);

}  // namespace ldl

#endif  // LDLOPT_OBS_FEEDBACK_H_
