file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_spectrum.dir/bench_cost_spectrum.cc.o"
  "CMakeFiles/bench_cost_spectrum.dir/bench_cost_spectrum.cc.o.d"
  "bench_cost_spectrum"
  "bench_cost_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
