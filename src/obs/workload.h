#ifndef LDLOPT_OBS_WORKLOAD_H_
#define LDLOPT_OBS_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/query_log.h"

namespace ldl {

/// Aggregated view of every record sharing one query signature
/// (program | query | adornment) — the unit the serving layer's plan cache
/// would key on, and the grain at which drift across runs is meaningful.
struct SignatureAggregate {
  size_t count = 0;
  size_t ok = 0;
  std::map<std::string, size_t> outcomes;  ///< outcome tag -> records
  std::map<std::string, size_t> plans;     ///< plan fingerprint -> records
  std::set<std::string> methods;           ///< recursion methods seen
  std::vector<double> total_ms;            ///< sorted by Finalize
  uint64_t tuples_examined = 0;            ///< summed across records
  uint64_t tuples_derived = 0;
  uint64_t peak_bytes_max = 0;
  uint64_t answers_max = 0;

  /// Exact percentile over the recorded latencies (p in [0,1]; nearest-rank
  /// on the sorted samples). 0 when no records.
  double LatencyPercentile(double p) const;
  double latency_max() const {
    return total_ms.empty() ? 0 : total_ms.back();
  }
};

/// One query-log file digested into per-signature aggregates.
struct WorkloadReport {
  static WorkloadReport Build(const std::vector<QueryLogRecord>& records);

  size_t records = 0;
  size_t ok = 0;
  std::map<std::string, size_t> outcomes;            ///< overall outcome mix
  std::map<std::string, SignatureAggregate> by_signature;

  /// Aggregate table (one row per signature: counts, plan fingerprints,
  /// latency p50/p95/max, tuples, peak bytes) followed by the top-N records
  /// by tuples examined.
  std::string ToString(size_t top_n = 5) const;

 private:
  std::vector<QueryLogRecord> raw_;  ///< kept for the top-N section
};

/// Gate thresholds for two-log mode.
struct WorkloadThresholds {
  /// Latency regression: fail when a signature's p50 grew by more than this
  /// percentage over the baseline log.
  double latency_pct = 50.0;
  /// Ignore latency comparisons where both sides are below this floor —
  /// micro-timings are noise.
  double min_ms = 1.0;
};

/// Differences between two runs of (nominally) the same workload.
struct WorkloadDiff {
  enum class Kind {
    kPlanDrift,          ///< a plan fingerprint not seen in the baseline
    kOutcomeChange,      ///< outcome mix changed (ok <-> typed failure)
    kLatencyRegression,  ///< p50 grew past the threshold
    kOnlyBefore,         ///< signature disappeared
    kOnlyAfter,          ///< signature appeared
  };
  struct Finding {
    Kind kind;
    std::string signature;
    std::string detail;
  };

  static WorkloadDiff Build(const WorkloadReport& before,
                            const WorkloadReport& after,
                            const WorkloadThresholds& thresholds);

  std::vector<Finding> findings;
  size_t plan_drifts = 0;
  size_t outcome_changes = 0;
  size_t latency_regressions = 0;

  /// True when a gating finding exists (plan drift, outcome change, or
  /// latency regression); only-before/only-after are informational — a
  /// trimmed workload is not a regression.
  bool failed() const {
    return plan_drifts != 0 || outcome_changes != 0 ||
           latency_regressions != 0;
  }

  std::string ToString() const;
};

/// The diff/aggregation key: program|query|adornment.
std::string QuerySignature(const QueryLogRecord& record);

}  // namespace ldl

#endif  // LDLOPT_OBS_WORKLOAD_H_
