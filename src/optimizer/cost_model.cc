#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "engine/builtins.h"

namespace ldl {

ConjunctItem MakeBaseItem(const Literal& lit, const Statistics& stats,
                          const CostModelOptions& options) {
  ConjunctItem item;
  item.literal = lit;
  const RelationStats rs = stats.Get(lit.predicate());
  item.base_cardinality = std::max(1.0, rs.cardinality);
  item.distinct = rs.distinct;
  if (item.distinct.size() < lit.arity()) {
    item.distinct.resize(lit.arity(), item.base_cardinality);
  }
  for (double& d : item.distinct) d = std::max(1.0, d);
  double card = item.base_cardinality;
  std::vector<double> distinct = item.distinct;
  item.use_catalog = true;
  item.estimate = [card, distinct, options](const Adornment& adn,
                                            double /*outer_card*/) {
    PlanEstimate est;
    double matches = card;
    for (size_t i = 0; i < adn.size() && i < distinct.size(); ++i) {
      if (adn.IsBound(i)) matches /= distinct[i];
    }
    matches = std::max(matches, 1e-9);
    est.card = matches;
    // EL: choose between a full scan and an index probe per binding.
    double scan_cost = card * options.tuple_cost;
    double index_cost = options.index_probe_cost +
                        matches * options.tuple_cost;
    est.per_binding = (options.enable_index_join && adn.BoundCount() > 0)
                          ? std::min(scan_cost, index_cost)
                          : scan_cost;
    est.setup = 0;
    return est;
  };
  return item;
}

void MeasuredStatistics::AdjustBaseItem(ConjunctItem* item) const {
  const PredicateId pred = item->literal.predicate();
  if (const double* total = Find(pred, Adornment::AllFree(pred.arity))) {
    item->base_cardinality = std::max(1.0, *total);
    for (double& d : item->distinct) {
      d = std::min(d, item->base_cardinality);
    }
  }
  if (!item->estimate) return;
  auto original = item->estimate;
  // Non-owning self capture: the overlay outlives the optimizer run (see
  // OptimizerOptions::measured).
  item->estimate = [original, this, pred](const Adornment& adn,
                                          double outer_card) {
    PlanEstimate est = original(adn, outer_card);
    if (const double* measured = Find(pred, adn)) {
      est.card = std::max(*measured, 1e-9);
    }
    return est;
  };
}

std::vector<std::pair<AdornedPredicate, double>> MeasuredStatistics::Entries()
    const {
  std::vector<std::pair<AdornedPredicate, double>> out(cards_.begin(),
                                                       cards_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string MeasuredStatistics::ToString() const {
  // Sorted for deterministic output.
  std::map<std::string, double> sorted;
  for (const auto& [ap, card] : cards_) sorted[ap.ToString()] = card;
  std::string out;
  for (const auto& [name, card] : sorted) {
    out += name;
    out += " = ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g\n", card);
    out += buf;
  }
  return out;
}

void CostModel::ApplyStep(const ConjunctItem& item, StepState* state) const {
  if (!state->safe) return;
  state->steps++;
  const Literal& lit = item.literal;

  if (lit.IsBuiltin()) {
    const bool lhs_bound = state->bound.IsTermBound(lit.args()[0]);
    const bool rhs_bound = state->bound.IsTermBound(lit.args()[1]);
    if (!BuiltinComputable(lit, lhs_bound, rhs_bound)) {
      state->safe = false;
      state->cost = kInfiniteCost;
      return;
    }
    state->cost += state->card * options_.builtin_cost;
    switch (lit.builtin()) {
      case BuiltinKind::kEq:
        if (lhs_bound && rhs_bound) {
          state->card *= options_.comparison_selectivity;
        }
        // Binding form: one output per input; card unchanged.
        break;
      case BuiltinKind::kNe:
        state->card *= options_.ne_selectivity;
        break;
      default:
        state->card *= options_.comparison_selectivity;
        break;
    }
    PropagateBindings(lit, &state->bound);
    return;
  }

  if (lit.negated()) {
    // Stratified negation: all variables must be bound here.
    for (const Term& a : lit.args()) {
      if (!state->bound.IsTermBound(a)) {
        state->safe = false;
        state->cost = kInfiniteCost;
        return;
      }
    }
    // A negated *derived* literal still requires its relation to be fully
    // computed within its stratum; charge that setup once.
    if (item.estimate) {
      PlanEstimate est =
          item.estimate(Adornment::AllBound(lit.arity()), state->card);
      if (!est.safe) {
        state->safe = false;
        state->cost = kInfiniteCost;
        return;
      }
      state->cost += est.setup;
    }
    state->cost +=
        state->card * (options_.index_probe_cost + options_.tuple_cost);
    state->card *= options_.negation_selectivity;
    return;
  }

  const Adornment adn = AdornLiteral(lit, state->bound);
  if (item.use_catalog) {
    // Catalog-backed item: symmetric selectivity math. Matches per binding
    // instance = |R| / prod over bound columns of max(d_col, domain(var)).
    double matches = std::max(item.base_cardinality, 1e-9);
    for (size_t i = 0; i < lit.arity(); ++i) {
      if (!adn.IsBound(i)) continue;
      double d_col = i < item.distinct.size() ? std::max(1.0, item.distinct[i])
                                              : item.base_cardinality;
      double divisor = d_col;
      const Term& arg = lit.args()[i];
      if (arg.kind() == TermKind::kVariable) {
        auto it = state->domains.find(arg.text());
        if (it != state->domains.end()) {
          divisor = std::max(d_col, it->second);
        }
      }
      matches /= divisor;
    }
    matches = std::max(matches, 1e-9);
    double scan_cost = item.base_cardinality * options_.tuple_cost;
    double probe_cost =
        options_.index_probe_cost + matches * options_.tuple_cost;
    double per_binding = (options_.enable_index_join && adn.BoundCount() > 0)
                             ? std::min(scan_cost, probe_cost)
                             : scan_cost;
    state->cost += state->card * per_binding;
    state->card *= matches;
    AbsorbDomains(item, &state->domains);
    PropagateBindings(lit, &state->bound);
    return;
  }

  PlanEstimate est =
      item.estimate ? item.estimate(adn, state->card) : PlanEstimate{};
  if (!est.safe) {
    state->safe = false;
    state->cost = kInfiniteCost;
    return;
  }
  state->cost += est.setup + state->card * est.per_binding;
  state->card *= est.card;
  AbsorbDomains(item, &state->domains);
  PropagateBindings(lit, &state->bound);
}

void AbsorbDomains(const ConjunctItem& item,
                   std::map<std::string, double>* domains) {
  const Literal& lit = item.literal;
  if (lit.IsBuiltin() || lit.negated()) return;
  for (size_t i = 0; i < lit.arity(); ++i) {
    const Term& arg = lit.args()[i];
    if (arg.kind() != TermKind::kVariable) continue;
    double d_col = i < item.distinct.size()
                       ? std::max(1.0, item.distinct[i])
                       : std::max(1.0, item.base_cardinality);
    auto [it, inserted] = domains->emplace(arg.text(), d_col);
    if (!inserted) it->second = std::min(it->second, d_col);
  }
}

SequenceCost CostModel::CostSequence(const std::vector<ConjunctItem>& items,
                                     const std::vector<size_t>& order,
                                     const BoundVars& initial) const {
  StepState state;
  state.bound = initial;
  for (size_t idx : order) {
    ApplyStep(items[idx], &state);
    if (!state.safe) return SequenceCost{};
  }
  SequenceCost out;
  out.cost = state.cost + state.card * options_.output_cost;
  out.out_card = state.card;
  out.safe = true;
  return out;
}

}  // namespace ldl
