# Empty dependencies file for bench_opt_recursive.
# This may be replaced when dependencies are built.
