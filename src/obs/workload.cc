#include "obs/workload.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/strings.h"

namespace ldl {

namespace {

std::string FmtMs(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string FmtPct(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", v);
  return buf;
}

/// Fixed-width text table in the bench_util style (this library cannot
/// depend on bench/, so the small renderer is repeated here).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void AppendTo(std::string* out) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto append_row = [&](const std::vector<std::string>& row) {
      out->push_back('|');
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        StrAppend(out, " ", cell,
                  std::string(widths[c] - cell.size(), ' '), " |");
      }
      out->push_back('\n');
    };
    append_row(headers_);
    out->push_back('|');
    for (size_t c = 0; c < widths.size(); ++c) {
      StrAppend(out, std::string(widths[c] + 2, '-'), "|");
    }
    out->push_back('\n');
    for (const auto& row : rows_) append_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string PlanSetToString(const std::map<std::string, size_t>& plans) {
  std::string out;
  bool first = true;
  for (const auto& [fp, n] : plans) {
    if (!first) out += " ";
    first = false;
    StrAppend(&out, fp.empty() ? "(none)" : fp);
    if (plans.size() > 1) StrAppend(&out, "x", n);
  }
  return out;
}

std::string OutcomeMixToString(const std::map<std::string, size_t>& mix) {
  std::string out;
  bool first = true;
  for (const auto& [outcome, n] : mix) {
    if (!first) out += " ";
    first = false;
    StrAppend(&out, outcome, ":", n);
  }
  return out;
}

}  // namespace

std::string QuerySignature(const QueryLogRecord& record) {
  return StrCat(record.program, "|", record.query, "|", record.adornment);
}

double SignatureAggregate::LatencyPercentile(double p) const {
  if (total_ms.empty()) return 0;
  if (p <= 0) return total_ms.front();
  if (p >= 1) return total_ms.back();
  // Nearest-rank: smallest sample with at least p*n samples <= it.
  size_t rank = static_cast<size_t>(p * static_cast<double>(total_ms.size()));
  if (rank >= total_ms.size()) rank = total_ms.size() - 1;
  return total_ms[rank];
}

WorkloadReport WorkloadReport::Build(
    const std::vector<QueryLogRecord>& records) {
  WorkloadReport report;
  report.records = records.size();
  report.raw_ = records;
  for (const QueryLogRecord& rec : records) {
    ++report.outcomes[rec.outcome];
    if (rec.outcome == "ok") ++report.ok;
    SignatureAggregate& agg = report.by_signature[QuerySignature(rec)];
    ++agg.count;
    if (rec.outcome == "ok") ++agg.ok;
    ++agg.outcomes[rec.outcome];
    ++agg.plans[rec.plan_fingerprint];
    if (!rec.method.empty()) agg.methods.insert(rec.method);
    agg.total_ms.push_back(rec.total_ms);
    agg.tuples_examined += rec.tuples_examined;
    agg.tuples_derived += rec.tuples_derived;
    agg.peak_bytes_max = std::max(agg.peak_bytes_max, rec.peak_bytes);
    agg.answers_max = std::max(agg.answers_max, rec.answers);
  }
  for (auto& [sig, agg] : report.by_signature) {
    std::sort(agg.total_ms.begin(), agg.total_ms.end());
  }
  return report;
}

std::string WorkloadReport::ToString(size_t top_n) const {
  std::string out = StrCat("== workload: ", records, " records, ",
                           by_signature.size(), " signatures (",
                           OutcomeMixToString(outcomes), ") ==\n");
  TextTable table({"signature", "n", "ok", "method", "plans", "p50 ms",
                   "p95 ms", "max ms", "tuples", "peak B"});
  for (const auto& [sig, agg] : by_signature) {
    table.AddRow({sig, std::to_string(agg.count), std::to_string(agg.ok),
                  StrJoin(agg.methods, ","),
                  PlanSetToString(agg.plans),
                  FmtMs(agg.LatencyPercentile(0.50)),
                  FmtMs(agg.LatencyPercentile(0.95)),
                  FmtMs(agg.latency_max()),
                  std::to_string(agg.tuples_examined),
                  std::to_string(agg.peak_bytes_max)});
  }
  table.AppendTo(&out);

  if (top_n > 0 && !raw_.empty()) {
    std::vector<const QueryLogRecord*> by_tuples;
    by_tuples.reserve(raw_.size());
    for (const QueryLogRecord& rec : raw_) by_tuples.push_back(&rec);
    std::stable_sort(by_tuples.begin(), by_tuples.end(),
                     [](const QueryLogRecord* a, const QueryLogRecord* b) {
                       return a->tuples_examined > b->tuples_examined;
                     });
    if (by_tuples.size() > top_n) by_tuples.resize(top_n);
    StrAppend(&out, "\n== top ", by_tuples.size(),
              " records by tuples examined ==\n");
    TextTable top({"query", "outcome", "tuples", "rounds", "total ms",
                   "plan"});
    for (const QueryLogRecord* rec : by_tuples) {
      top.AddRow({rec->query, rec->outcome,
                  std::to_string(rec->tuples_examined),
                  std::to_string(rec->fixpoint_rounds),
                  FmtMs(rec->total_ms), rec->plan_fingerprint});
    }
    top.AppendTo(&out);
  }
  return out;
}

WorkloadDiff WorkloadDiff::Build(const WorkloadReport& before,
                                 const WorkloadReport& after,
                                 const WorkloadThresholds& thresholds) {
  WorkloadDiff diff;
  for (const auto& [sig, b] : before.by_signature) {
    auto it = after.by_signature.find(sig);
    if (it == after.by_signature.end()) {
      diff.findings.push_back(
          {Kind::kOnlyBefore, sig,
           StrCat("signature absent from the second log (", b.count,
                  " records in the first)")});
      continue;
    }
    const SignatureAggregate& a = it->second;

    // Plan drift: the optimizer made a decision in the second run that the
    // first run never made for this signature.
    std::vector<std::string> new_plans;
    for (const auto& [fp, n] : a.plans) {
      if (b.plans.find(fp) == b.plans.end()) new_plans.push_back(fp);
    }
    if (!new_plans.empty()) {
      ++diff.plan_drifts;
      diff.findings.push_back(
          {Kind::kPlanDrift, sig,
           StrCat("plan fingerprint drift: {", PlanSetToString(b.plans),
                  "} -> {", PlanSetToString(a.plans), "}")});
    }

    // Outcome mix change: a query that succeeded starts failing (or vice
    // versa) between runs of the same workload.
    if (b.outcomes != a.outcomes) {
      ++diff.outcome_changes;
      diff.findings.push_back(
          {Kind::kOutcomeChange, sig,
           StrCat("outcome mix changed: {", OutcomeMixToString(b.outcomes),
                  "} -> {", OutcomeMixToString(a.outcomes), "}")});
    }

    const double b50 = b.LatencyPercentile(0.50);
    const double a50 = a.LatencyPercentile(0.50);
    if ((b50 >= thresholds.min_ms || a50 >= thresholds.min_ms) && b50 > 0) {
      const double growth_pct = (a50 / b50 - 1.0) * 100.0;
      if (growth_pct > thresholds.latency_pct) {
        ++diff.latency_regressions;
        diff.findings.push_back(
            {Kind::kLatencyRegression, sig,
             StrCat("p50 latency ", FmtMs(b50), " ms -> ", FmtMs(a50),
                    " ms (", FmtPct(growth_pct), ", threshold +",
                    thresholds.latency_pct, "%)")});
      }
    }
  }
  for (const auto& [sig, a] : after.by_signature) {
    if (before.by_signature.find(sig) == before.by_signature.end()) {
      diff.findings.push_back(
          {Kind::kOnlyAfter, sig,
           StrCat("signature only in the second log (", a.count,
                  " records)")});
    }
  }
  return diff;
}

std::string WorkloadDiff::ToString() const {
  std::string out;
  auto kind_name = [](Kind kind) {
    switch (kind) {
      case Kind::kPlanDrift: return "PLAN-DRIFT";
      case Kind::kOutcomeChange: return "OUTCOME-CHANGE";
      case Kind::kLatencyRegression: return "LATENCY-REGRESSION";
      case Kind::kOnlyBefore: return "ONLY-BEFORE";
      case Kind::kOnlyAfter: return "ONLY-AFTER";
    }
    return "?";
  };
  for (const Finding& f : findings) {
    StrAppend(&out, kind_name(f.kind), " ", f.signature, ": ", f.detail,
              "\n");
  }
  StrAppend(&out, "workload diff: ", findings.size(), " findings (",
            plan_drifts, " plan drifts, ", outcome_changes,
            " outcome changes, ", latency_regressions,
            " latency regressions)\n");
  return out;
}

}  // namespace ldl
