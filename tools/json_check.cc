// json_check — validates that each input file is well-formed JSON.
//
// Usage: json_check [--jsonl] file.json [file.json ...]
//
// A minimal recursive-descent checker (RFC 8259 grammar: objects, arrays,
// strings with escapes, numbers, true/false/null). It validates shape only —
// no values are materialized — so CI can assert that the JSON the
// observability tools emit (Chrome traces, metrics dumps, bench results)
// will load anywhere, without pulling in a JSON library.
//
// With --jsonl, each input is JSON Lines (one JSON value per non-empty
// line — the query-log format); every line is validated independently and
// errors carry the line number.
//
// Exit status: 0 all files valid, 1 any invalid/unreadable, 2 usage error.

#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True if the whole input is exactly one JSON value (plus whitespace).
  bool Check(std::string* error) {
    if (!Value()) {
      *error = error_;
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = Where("trailing content after JSON value");
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = Where(message);
    return false;
  }

  std::string Where(const std::string& message) {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "line " << line << " col " << col << ": " << message;
    return os.str();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    if (Consume('}')) return true;
    do {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key");
      }
      if (!String()) return false;
      if (!Consume(':')) return Fail("expected ':' after key");
      if (!Value()) return false;
    } while (Consume(','));
    if (!Consume('}')) return Fail("expected ',' or '}' in object");
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    if (!Consume(']')) return Fail("expected ',' or ']' in array");
    return true;
  }

  bool String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return Fail("invalid \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("invalid escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("invalid literal, expected ") + word);
      }
    }
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  int first_file = 1;
  if (argc > 1 && std::string(argv[1]) == "--jsonl") {
    jsonl = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::cerr << "usage: json_check [--jsonl] file.json [file.json ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << argv[i] << ": cannot read file\n";
      ++failures;
      continue;
    }
    if (jsonl) {
      std::string line;
      size_t lineno = 0;
      size_t values = 0;
      bool bad = false;
      while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string error;
        if (!JsonChecker(line).Check(&error)) {
          std::cerr << argv[i] << ": line " << lineno << ": invalid JSON: "
                    << error << "\n";
          bad = true;
        } else {
          ++values;
        }
      }
      if (bad) {
        ++failures;
      } else {
        std::cout << argv[i] << ": ok (" << values << " values)\n";
      }
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::string error;
    if (!JsonChecker(text).Check(&error)) {
      std::cerr << argv[i] << ": invalid JSON: " << error << "\n";
      ++failures;
    } else {
      std::cout << argv[i] << ": ok\n";
    }
  }
  return failures > 0 ? 1 : 0;
}
