#include "ldl/ldl.h"

#include "analysis/analyzer.h"
#include "base/strings.h"
#include "obs/search_trace.h"
#include "optimizer/project_pushdown.h"
#include "plan/explain.h"
#include "plan/interpreter.h"

namespace ldl {

LdlSystem::LdlSystem(OptimizerOptions options)
    : options_(std::move(options)) {}

Status LdlSystem::LoadProgram(std::string_view text) {
  LDL_ASSIGN_OR_RETURN(Program parsed, ParseProgram(text));
  return Ingest(std::move(parsed));
}

Status LdlSystem::AddClause(std::string_view text) {
  return LoadProgram(text);
}

Status LdlSystem::Ingest(Program parsed) {
  for (const Literal& fact : parsed.facts()) {
    LDL_RETURN_NOT_OK(db_.AddFact(fact));
  }
  for (const Rule& rule : parsed.rules()) {
    program_.AddRule(rule);
  }
  for (const QueryForm& query : parsed.queries()) {
    program_.AddQuery(query);
  }
  LDL_RETURN_NOT_OK(program_.Validate());
  stats_dirty_ = true;
  return Status::OK();
}

void LdlSystem::RefreshStatistics() {
  stats_ = Statistics::Collect(db_);
  stats_dirty_ = false;
}

const Statistics& LdlSystem::statistics() {
  if (stats_dirty_) RefreshStatistics();
  return stats_;
}

Result<QueryPlan> LdlSystem::Plan(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  return Plan(goal);
}

Result<Program> LdlSystem::EffectiveProgram(const Literal& goal) const {
  if (options_.push_projections && program_.IsDerived(goal.predicate())) {
    auto projected = PushProjections(program_, goal);
    if (projected.ok()) return std::move(projected->rewritten);
  }
  return program_;
}

Result<LdlSystem::GoalContext> LdlSystem::PrepareGoal(const Literal& goal) {
  GoalContext ctx;
  ctx.options = options_;
  LDL_ASSIGN_OR_RETURN(ctx.working, EffectiveProgram(goal));
  const bool wants_analysis =
      options_.analyze_reachability || options_.eliminate_dead_rules;
  if (!wants_analysis || ctx.options.analysis != nullptr ||
      !program_.IsDerived(goal.predicate())) {
    return ctx;
  }

  AnalyzerOptions aopts;
  aopts.database = &db_;
  aopts.statistics = &stats_;

  if (options_.eliminate_dead_rules) {
    ProgramAnalyzer analyzer(ctx.working, aopts);
    DeadRuleElimination pruned =
        EliminateDeadRules(ctx.working, analyzer.Analyze(goal));
    if (!pruned.removed_rules.empty()) {
      ctx.working = std::move(pruned.program);
    }
  }
  if (options_.analyze_reachability) {
    // Analyze the (possibly pruned) working program so the reachable set
    // and rule indices match what the optimizer actually sees.
    ProgramAnalyzer analyzer(ctx.working, aopts);
    ctx.analysis = std::make_unique<ProgramAnalysis>(analyzer.Analyze(goal));
    ctx.options.analysis = ctx.analysis.get();
    if (ctx.options.trace.metrics != nullptr) {
      ctx.analysis->ExportTo(ctx.options.trace.metrics);
    }
  }
  return ctx;
}

Result<QueryPlan> LdlSystem::Plan(const Literal& goal) {
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  return optimizer.Optimize(goal);
}

Result<QueryAnswer> LdlSystem::Query(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  return Query(goal);
}

Result<QueryAnswer> LdlSystem::Query(const Literal& goal) {
  // Base-relation queries bypass optimization.
  if (!program_.IsDerived(goal.predicate())) {
    if (!db_.Exists(goal.predicate())) {
      return Status::NotFound(
          StrCat("unknown predicate ", goal.predicate().ToString()));
    }
    QueryAnswer answer;
    answer.answers = SelectMatching(db_.Find(goal.predicate()), goal);
    answer.plan.goal = goal;
    answer.plan.safe = true;
    return answer;
  }

  // Plan and execute against the same (possibly projection-rewritten,
  // possibly dead-rule-pruned) program: the plan's rule indices refer to it.
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  if (!plan.safe) {
    return Status::Unsafe(StrCat("query ", goal.ToString(),
                                 "? has no safe execution: ",
                                 plan.unsafe_reason));
  }

  QueryEvalOptions eval_options;
  eval_options.fixpoint.trace = options_.trace;
  eval_options.fixpoint.record_iterations = options_.record_fixpoint_iterations;
  eval_options.sips = plan.sips;
  eval_options.fixpoint.rule_orders.insert(plan.rule_orders.begin(),
                                           plan.rule_orders.end());
  LDL_ASSIGN_OR_RETURN(
      QueryResult result,
      EvaluateQuery(ctx.working, &db_, goal, plan.top_method, eval_options));

  QueryAnswer answer;
  answer.answers = std::move(result.answers);
  answer.plan = std::move(plan);
  answer.exec_stats = result.stats;
  answer.note = result.note;
  return answer;
}

Result<std::string> LdlSystem::Explain(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  return plan.Explain(ctx.working);
}

Result<std::string> LdlSystem::ExplainOptimize(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  SearchTracer local;
  if (ctx.options.trace.search == nullptr) ctx.options.trace.search = &local;
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  std::string out = plan.Explain(ctx.working);
  StrAppend(&out, "\n", RenderExplainOptimize(*ctx.options.trace.search));
  return out;
}

Result<std::string> LdlSystem::ExplainTree(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                       BuildProcessingTree(ctx.working, goal));
  Optimizer optimizer(ctx.working, stats_, ctx.options);
  LDL_RETURN_NOT_OK(optimizer.AnnotateTree(tree.get()));
  return tree->ToString();
}

Result<std::string> LdlSystem::ExplainAnalyze(std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(AnalyzeResult res, AnalyzeCalibrated(goal_text));
  return std::move(res.text);
}

Result<LdlSystem::AnalyzeResult> LdlSystem::AnalyzeCalibrated(
    std::string_view goal_text) {
  LDL_ASSIGN_OR_RETURN(Literal goal, ParseLiteral(goal_text));
  if (stats_dirty_) RefreshStatistics();
  LDL_ASSIGN_OR_RETURN(GoalContext ctx, PrepareGoal(goal));
  const Program& working = ctx.working;
  // Optimize first: the chosen QueryPlan feeds the regret analysis, and an
  // unsafe plan must not reach the interpreter (it may not terminate).
  Optimizer optimizer(working, stats_, ctx.options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  if (!plan.safe) {
    return Status::Unsafe(StrCat("query ", goal.ToString(),
                                 "? has no safe execution: ",
                                 plan.unsafe_reason));
  }
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                       BuildProcessingTree(working, goal));
  LDL_RETURN_NOT_OK(optimizer.AnnotateTree(tree.get()));

  TreeInterpreter interpreter(working, &db_);
  interpreter.set_trace(options_.trace);
  LDL_ASSIGN_OR_RETURN(Relation answers,
                       interpreter.Execute(*tree, tree->goal));

  std::string out = RenderExplain(*tree, &interpreter.profile());
  const EvalCounters& c = interpreter.counters();
  StrAppend(&out, "\nAnswers: ", answers.size(), " rows\n");
  StrAppend(&out, "Totals: ", c.tuples_examined, " tuples examined, ",
            c.derivations, " derivations, ", interpreter.memo_hits(),
            " memo hits\n");

  CalibrationReport report = CalibrationReport::Build(
      *tree, interpreter.profile(), goal.ToString());
  MeasuredStatistics measured =
      HarvestMeasuredStatistics(*tree, interpreter.profile());
  report.set_regret(
      ComputePlanRegret(working, stats_, ctx.options, goal, plan, measured));
  report.ExportTo(options_.trace.metrics);
  StrAppend(&out, "\n", report.ToString());

  AnalyzeResult res;
  res.text = std::move(out);
  res.report = std::move(report);
  return res;
}

SafetyReport LdlSystem::CheckSafety(std::string_view goal_text) {
  auto goal = ParseLiteral(goal_text);
  if (!goal.ok()) {
    SafetyReport report;
    report.safe = false;
    report.problems.push_back(goal.status().ToString());
    return report;
  }
  return AnalyzeQuerySafety(program_, *goal);
}

Result<QueryResult> LdlSystem::EvaluateUnoptimized(const Literal& goal,
                                                   RecursionMethod method) {
  return EvaluateQuery(program_, &db_, goal, method, {});
}

}  // namespace ldl
