#include "plan/explain.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "base/strings.h"

namespace ldl {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatMillis(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// The tree-structure label of one node: everything EXPLAIN shows apart
/// from the numeric columns. Matches PlanNode::ToString's vocabulary so the
/// two views read the same.
std::string NodeLabel(const PlanNode& node) {
  std::string label = PlanNodeKindToString(node.kind);
  label += node.materialized ? " [mat]" : " [pipe]";
  if (!node.method.empty()) StrAppend(&label, " ", node.method);
  StrAppend(&label, " ", node.goal.ToString());
  if (node.binding.size() > 0) StrAppend(&label, " :", node.binding.ToString());
  if (node.kind == PlanNodeKind::kAnd && node.rule_index != SIZE_MAX) {
    StrAppend(&label, " (rule ", node.rule_index, ")");
  }
  if (node.kind == PlanNodeKind::kCc) {
    label += " {";
    for (size_t i = 0; i < node.clique_predicates.size(); ++i) {
      if (i) label += ", ";
      label += node.clique_predicates[i].ToString();
    }
    label += "}";
  }
  return label;
}

struct Row {
  std::string label;
  std::vector<std::string> cells;
};

void CollectRows(const PlanNode& node, size_t depth,
                 const ExecutionProfile* profile, std::vector<Row>* rows) {
  Row row;
  row.label = std::string(depth * 2, ' ') + NodeLabel(node);
  row.cells.push_back(FormatDouble(node.est_cost));
  row.cells.push_back(FormatDouble(node.est_cardinality));
  if (profile != nullptr) {
    const NodeActuals* a = profile->Find(&node);
    if (a == nullptr || a->executions == 0) {
      // Never executed directly: builtins are folded into their AND parent;
      // a pure memo-hit node keeps its hit count visible.
      const char* dash = "-";
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(a == nullptr ? dash : StrCat(a->memo_hits));
    } else {
      row.cells.push_back(StrCat(a->out_rows));
      row.cells.push_back(StrCat(a->tuples_examined));
      row.cells.push_back(FormatMillis(a->wall_ms));
      row.cells.push_back(StrCat(a->executions));
      row.cells.push_back(StrCat(a->memo_hits));
    }
  }
  rows->push_back(std::move(row));
  for (const auto& child : node.children) {
    CollectRows(*child, depth + 1, profile, rows);
  }
}

}  // namespace

std::string RenderExplain(const PlanNode& tree,
                          const ExecutionProfile* profile) {
  std::vector<Row> rows;
  CollectRows(tree, 0, profile, &rows);

  std::vector<std::string> headers = {"EST COST", "EST ROWS"};
  if (profile != nullptr) {
    headers.insert(headers.end(),
                   {"ROWS", "TUPLES", "TIME MS", "EXEC", "MEMO"});
  }

  size_t label_width = 4;  // "PLAN"
  for (const Row& row : rows) {
    if (row.label.size() > label_width) label_width = row.label.size();
  }
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const Row& row : rows) {
      if (row.cells[c].size() > widths[c]) widths[c] = row.cells[c].size();
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::string& label,
                  const std::vector<std::string>& cells) {
    os << label;
    for (size_t i = label.size(); i < label_width; ++i) os << ' ';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      for (size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << cells[c];  // right-aligned numeric columns
    }
    os << '\n';
  };

  emit("PLAN", headers);
  size_t total = label_width;
  for (size_t w : widths) total += 2 + w;
  os << std::string(total, '-') << '\n';
  for (const Row& row : rows) emit(row.label, row.cells);
  return os.str();
}

}  // namespace ldl
