#include "testing/program_gen.h"

#include <algorithm>
#include <set>

#include "base/strings.h"

namespace ldl {
namespace testing {

const char* EdbShapeToString(EdbShape shape) {
  switch (shape) {
    case EdbShape::kChain:
      return "chain";
    case EdbShape::kTree:
      return "tree";
    case EdbShape::kCycle:
      return "cycle";
    case EdbShape::kRandom:
      return "random";
    case EdbShape::kMixed:
      return "mixed";
  }
  return "?";
}

bool ParseEdbShape(std::string_view text, EdbShape* out) {
  for (EdbShape s : {EdbShape::kChain, EdbShape::kTree, EdbShape::kCycle,
                     EdbShape::kRandom, EdbShape::kMixed}) {
    if (text == EdbShapeToString(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

const char* RecursionKindToString(RecursionKind kind) {
  switch (kind) {
    case RecursionKind::kLinear:
      return "linear";
    case RecursionKind::kNonlinear:
      return "nonlinear";
    case RecursionKind::kMutual:
      return "mutual";
    case RecursionKind::kSameGeneration:
      return "sg";
  }
  return "?";
}

namespace {

Term V(const char* name) { return Term::MakeVariable(name); }
Term C(int64_t v) { return Term::MakeInt(v); }

Literal Edge(const std::string& pred, Term a, Term b) {
  return Literal::Make(pred, {std::move(a), std::move(b)});
}

/// Emits the fact set of one EDB relation with the given graph shape.
void MakeEdbFacts(const std::string& pred, EdbShape shape, size_t facts,
                  size_t domain, Rng* rng, std::vector<Literal>* out) {
  switch (shape) {
    case EdbShape::kChain: {
      size_t len = std::min(facts, domain > 1 ? domain - 1 : 1);
      size_t start = rng->Uniform(std::max<size_t>(1, domain - len));
      for (size_t i = 0; i < len; ++i) {
        out->push_back(Edge(pred, C(static_cast<int64_t>(start + i)),
                            C(static_cast<int64_t>(start + i + 1))));
      }
      break;
    }
    case EdbShape::kTree: {
      // Child -> parent edges of a fanout-f heap layout: parent(i)=(i-1)/f.
      size_t fanout = 2 + rng->Uniform(2);
      size_t nodes = std::min(facts + 1, domain);
      for (size_t i = 1; i < nodes; ++i) {
        out->push_back(Edge(pred, C(static_cast<int64_t>(i)),
                            C(static_cast<int64_t>((i - 1) / fanout))));
      }
      break;
    }
    case EdbShape::kCycle: {
      size_t len = std::max<size_t>(2, std::min(facts, domain));
      for (size_t i = 0; i < len; ++i) {
        out->push_back(Edge(pred, C(static_cast<int64_t>(i)),
                            C(static_cast<int64_t>((i + 1) % len))));
      }
      // A couple of chords to make the cycle less regular.
      for (size_t i = 0; i < 1 + rng->Uniform(3); ++i) {
        out->push_back(Edge(pred, C(static_cast<int64_t>(rng->Uniform(len))),
                            C(static_cast<int64_t>(rng->Uniform(len)))));
      }
      break;
    }
    case EdbShape::kRandom:
    case EdbShape::kMixed: {
      for (size_t i = 0; i < facts; ++i) {
        out->push_back(Edge(pred, C(static_cast<int64_t>(rng->Uniform(domain))),
                            C(static_cast<int64_t>(rng->Uniform(domain)))));
      }
      break;
    }
  }
}

BuiltinKind RandomComparison(Rng* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return BuiltinKind::kLt;
    case 1:
      return BuiltinKind::kLe;
    case 2:
      return BuiltinKind::kGt;
    case 3:
      return BuiltinKind::kGe;
    default:
      return BuiltinKind::kNe;
  }
}

}  // namespace

bool GeneratedProgram::HasNegation() const {
  for (const Rule& r : rules) {
    for (const Literal& l : r.body()) {
      if (l.negated()) return true;
    }
  }
  return false;
}

std::string GeneratedProgram::ToLdl() const {
  std::string out;
  StrAppend(&out, "% generated program: ", summary, "\n");
  for (const Literal& f : facts) StrAppend(&out, f.ToString(), ".\n");
  for (const Rule& r : rules) StrAppend(&out, r.ToString(), "\n");
  StrAppend(&out, query.ToString(), "?\n");
  return out;
}

Result<Program> GeneratedProgram::BuildProgram() const {
  Program p;
  for (const Rule& r : rules) p.AddRule(r);
  LDL_RETURN_NOT_OK(p.Validate());
  return p;
}

Status GeneratedProgram::BuildDatabase(Database* db) const {
  for (const Literal& f : facts) {
    LDL_RETURN_NOT_OK(db->AddFact(f));
  }
  return Status::OK();
}

GeneratedProgram GenerateProgram(Rng* rng, const ProgramGenOptions& options) {
  GeneratedProgram out;

  // --- EDB layer -----------------------------------------------------------
  size_t span = options.max_edb_relations - options.min_edb_relations + 1;
  size_t n_edb = options.min_edb_relations + rng->Uniform(span);
  n_edb = std::max<size_t>(1, n_edb);
  std::vector<std::string> edb;
  std::vector<EdbShape> shapes;
  for (size_t i = 0; i < n_edb; ++i) {
    EdbShape shape = options.shape;
    if (shape == EdbShape::kMixed) {
      constexpr EdbShape kAll[] = {EdbShape::kChain, EdbShape::kTree,
                                   EdbShape::kCycle, EdbShape::kRandom};
      shape = kAll[rng->Uniform(4)];
    }
    std::string pred = StrCat("e", i);
    size_t facts = options.min_facts +
                   rng->Uniform(options.max_facts - options.min_facts + 1);
    MakeEdbFacts(pred, shape, facts, options.domain, rng, &out.facts);
    edb.push_back(pred);
    shapes.push_back(shape);
  }
  auto pick_edb = [&edb, rng]() -> const std::string& {
    return edb[rng->Uniform(edb.size())];
  };

  // --- recursive clique ----------------------------------------------------
  constexpr RecursionKind kKinds[] = {
      RecursionKind::kLinear, RecursionKind::kNonlinear, RecursionKind::kMutual,
      RecursionKind::kSameGeneration};
  RecursionKind rec = kKinds[rng->Uniform(4)];
  const std::string t = "t";
  switch (rec) {
    case RecursionKind::kLinear:
      out.rules.emplace_back(Edge(t, V("X"), V("Y")),
                             std::vector<Literal>{Edge(pick_edb(), V("X"),
                                                       V("Y"))});
      out.rules.emplace_back(
          Edge(t, V("X"), V("Y")),
          std::vector<Literal>{Edge(pick_edb(), V("X"), V("Z")),
                               Edge(t, V("Z"), V("Y"))});
      break;
    case RecursionKind::kNonlinear:
      out.rules.emplace_back(Edge(t, V("X"), V("Y")),
                             std::vector<Literal>{Edge(pick_edb(), V("X"),
                                                       V("Y"))});
      out.rules.emplace_back(
          Edge(t, V("X"), V("Y")),
          std::vector<Literal>{Edge(t, V("X"), V("Z")),
                               Edge(t, V("Z"), V("Y"))});
      break;
    case RecursionKind::kMutual:
      out.rules.emplace_back(Edge(t, V("X"), V("Y")),
                             std::vector<Literal>{Edge(pick_edb(), V("X"),
                                                       V("Y"))});
      out.rules.emplace_back(
          Edge(t, V("X"), V("Y")),
          std::vector<Literal>{Edge(pick_edb(), V("X"), V("Z")),
                               Edge("u", V("Z"), V("Y"))});
      out.rules.emplace_back(
          Edge("u", V("X"), V("Y")),
          std::vector<Literal>{Edge(pick_edb(), V("X"), V("Z")),
                               Edge(t, V("Z"), V("Y"))});
      break;
    case RecursionKind::kSameGeneration: {
      const std::string& up = pick_edb();
      const std::string& flat = pick_edb();
      const std::string& dn = pick_edb();
      out.rules.emplace_back(Edge(t, V("X"), V("Y")),
                             std::vector<Literal>{Edge(flat, V("X"), V("Y"))});
      out.rules.emplace_back(
          Edge(t, V("X"), V("Y")),
          std::vector<Literal>{Edge(up, V("X"), V("X1")),
                               Edge(t, V("X1"), V("Y1")),
                               Edge(dn, V("Y1"), V("Y"))});
      break;
    }
  }
  if (rng->UniformDouble() < options.extra_exit_probability) {
    out.rules.emplace_back(Edge(t, V("X"), V("Y")),
                           std::vector<Literal>{Edge(pick_edb(), V("X"),
                                                     V("Y"))});
  }

  // --- top view (nonrecursive AND over the clique) -------------------------
  std::string top = t;
  bool has_view = rng->UniformDouble() < options.view_probability;
  bool has_builtin = false;
  bool has_negation = false;
  if (has_view) {
    top = "v";
    std::vector<Literal> body;
    // Three view skeletons, all binding X and Y through positive literals.
    switch (rng->Uniform(3)) {
      case 0:  // v(X,Y) <- t(X,Z), e(Z,Y).
        body.push_back(Edge(t, V("X"), V("Z")));
        body.push_back(Edge(pick_edb(), V("Z"), V("Y")));
        break;
      case 1:  // v(X,Y) <- e(X,Z), t(Z,Y).
        body.push_back(Edge(pick_edb(), V("X"), V("Z")));
        body.push_back(Edge(t, V("Z"), V("Y")));
        break;
      default:  // v(X,Y) <- t(X,Y).
        body.push_back(Edge(t, V("X"), V("Y")));
        break;
    }
    if (rng->UniformDouble() < options.builtin_probability) {
      has_builtin = true;
      body.push_back(
          Literal::MakeBuiltin(RandomComparison(rng), V("X"), V("Y")));
    }
    if (rng->UniformDouble() < options.negation_probability) {
      has_negation = true;
      // All variables of the negated literal are bound by the positives
      // above; negating an EDB relation keeps the program trivially
      // stratified (negating t would also be fine but only when the view
      // body does not depend on t's stratum — keep it simple).
      body.push_back(
          Literal::MakeNegated(pick_edb(), {V("X"), V("Y")}));
    }
    out.rules.emplace_back(Edge(top, V("X"), V("Y")), std::move(body));
  }

  // --- query form ----------------------------------------------------------
  bool bound1 = rng->UniformDouble() < options.bound_query_probability;
  bool bound2 = bound1 && rng->UniformDouble() < options.second_bound_probability;
  auto pick_constant = [&]() -> Term {
    // Usually a value that occurs in the EDB; occasionally a miss.
    if (!out.facts.empty() && rng->Uniform(8) != 0) {
      const Literal& f = out.facts[rng->Uniform(out.facts.size())];
      return f.args()[rng->Uniform(f.args().size())];
    }
    return C(static_cast<int64_t>(rng->Uniform(options.domain + 4)));
  };
  out.query = Literal::Make(
      top, {bound1 ? pick_constant() : V("Qx"),
            bound2 ? pick_constant() : V("Qy")});

  // --- statically dead clauses (analysis targets) --------------------------
  // Drawn last, and only when enabled, so the default configuration's rng
  // stream — and therefore every existing seed's program — is unchanged.
  bool has_dead_rule =
      options.dead_rule_probability > 0 &&
      rng->UniformDouble() < options.dead_rule_probability;
  if (has_dead_rule) {
    // An exit rule that derives nothing: X ranges over the (numeric) EDB
    // but is then equated to a symbol. Run-time semantics are unaffected;
    // the analyzer flags the sort conflict and elimination drops the rule.
    out.rules.emplace_back(
        Edge(t, V("X"), V("Y")),
        std::vector<Literal>{
            Edge(pick_edb(), V("X"), V("Y")),
            Literal::MakeBuiltin(BuiltinKind::kEq, V("X"),
                                 Term::MakeSymbol("zz_dead"))});
  }
  bool has_unreachable =
      options.unreachable_predicate_probability > 0 &&
      rng->UniformDouble() < options.unreachable_predicate_probability;
  if (has_unreachable) {
    // A derived predicate nothing references: unreachable from any query.
    out.rules.emplace_back(
        Edge("zz_unreach", V("X"), V("Y")),
        std::vector<Literal>{Edge(pick_edb(), V("X"), V("Y"))});
  }

  // --- summary -------------------------------------------------------------
  std::string shape_list;
  for (size_t i = 0; i < shapes.size(); ++i) {
    StrAppend(&shape_list, i ? "," : "", EdbShapeToString(shapes[i]));
  }
  out.summary = StrCat(
      "shape=", shape_list, " rec=", RecursionKindToString(rec),
      has_view ? " view" : "", has_builtin ? " builtin" : "",
      has_negation ? " neg" : "", has_dead_rule ? " dead" : "",
      has_unreachable ? " unreach" : "", " adorn=", bound1 ? "b" : "f",
      bound2 ? "b" : "f");
  return out;
}

}  // namespace testing
}  // namespace ldl
