file(REMOVE_RECURSE
  "libldl_optimizer.a"
)
