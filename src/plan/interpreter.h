#ifndef LDLOPT_PLAN_INTERPRETER_H_
#define LDLOPT_PLAN_INTERPRETER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ast/program.h"
#include "base/status.h"
#include "engine/fixpoint.h"
#include "obs/context.h"
#include "plan/processing_tree.h"
#include "storage/database.h"

namespace ldl {

/// Executes processing trees according to the paper's section 4 semantics:
///
///  - execution proceeds bottom-up, left to right;
///  - a *materialized* (square) subtree is computed in full before its
///    ancestor operation starts — "without any sideways information
///    passing";
///  - a *pipelined* (triangle) subtree is computed lazily, "using the
///    binding from the result of the subquery to the left": the AND node
///    passes each intermediate binding down and the subtree returns only
///    the matching fragment. Repeated bindings are answered from a table
///    (memo), so pipelining never does more total work than the bindings
///    demand;
///  - a CC node computes the least fixpoint of its clique with the method
///    its EL/PA labels selected (naive / seminaive materialized; magic /
///    counting pipelined).
///
/// This interpreter exists to make the execution model concrete and
/// testable; the production path in LdlSystem executes optimizer plans
/// directly through the engine (the two agree — see interpreter_test).
class TreeInterpreter {
 public:
  /// `program` must be the program the tree was built from; `db` holds the
  /// base relations. Both must outlive the interpreter.
  TreeInterpreter(const Program& program, Database* db)
      : program_(program), db_(db) {}

  /// Executes `tree` for `goal_instance` (the tree's goal with any
  /// additional constants substituted; pass tree.goal for the generic
  /// result). Returns the matching tuples.
  Result<Relation> Execute(const PlanNode& tree, const Literal& goal_instance);

  /// Work accounting across all Execute calls.
  const EvalCounters& counters() const { return counters_; }
  size_t memo_hits() const { return memo_hits_; }

  /// Observability: spans per executed node plus per-node measured
  /// rows/time/work, the raw material of EXPLAIN ANALYZE
  /// (plan/explain.h). Set before Execute; inert by default.
  void set_trace(const TraceContext& trace) { trace_ = trace; }
  const ExecutionProfile& profile() const { return profile_; }

 private:
  Result<const Relation*> ExecuteNode(const PlanNode& node,
                                      const Literal& goal_instance);
  /// Records actuals for a scan resolved inline by its AND/CC parent (one
  /// execution; rows = total base-relation cardinality).
  void RecordScanActuals(const PlanNode& node, const Relation* rel);
  Result<Relation> ExecuteScan(const PlanNode& node, const Literal& goal);
  Result<Relation> ExecuteOr(const PlanNode& node, const Literal& goal);
  Result<Relation> ExecuteAnd(const PlanNode& node, const Literal& goal);
  /// EL "hash-join" path: whole-relation equi-joins over materialized
  /// children (engine/operators.h). nullopt = shape not expressible
  /// (builtins, negation, function terms); caller falls back to the
  /// tuple-at-a-time pipeline.
  std::optional<Result<Relation>> TryHashJoin(const PlanNode& node,
                                              const Rule& specialized);
  Result<Relation> ExecuteCc(const PlanNode& node, const Literal& goal);

  const Program& program_;
  Database* db_;
  // Tabling: (node identity, instance pattern) -> result.
  std::map<std::string, std::unique_ptr<Relation>> memo_;
  EvalCounters counters_;
  size_t memo_hits_ = 0;
  TraceContext trace_;
  ExecutionProfile profile_;
};

}  // namespace ldl

#endif  // LDLOPT_PLAN_INTERPRETER_H_
