#include "obs/feedback.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/strings.h"
#include "obs/calibration.h"

namespace ldl {

namespace {

/// Shortest representation that parses back to the same double (%.17g is
/// always exact; try %.15g first so common values stay readable).
std::string RoundTripDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void AppendField(std::string* out, const char* key, const std::string& v) {
  StrAppend(out, "\"", key, "\":\"", JsonEscape(v), "\",");
}
void AppendField(std::string* out, const char* key, uint64_t v) {
  StrAppend(out, "\"", key, "\":", std::to_string(v), ",");
}
void AppendField(std::string* out, const char* key, double v) {
  StrAppend(out, "\"", key, "\":", RoundTripDouble(v), ",");
}

/// Minimal recursive-descent reader for the catalog export schema: one
/// object with scalar fields plus an "entries" array of flat objects.
class CatalogJsonParser {
 public:
  explicit CatalogJsonParser(const std::string& text) : text_(text) {}

  Status Fail(const std::string& why) const {
    return Status::InvalidArgument(
        StrCat("stats catalog: ", why, " at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  /// Raw scalar token: number / true / false, up to , } or ].
  Status ParseScalarToken(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']') {
      ++pos_;
    }
    *out = std::string(
        StripWhitespace(std::string_view(text_).substr(start, pos_ - start)));
    if (out->empty()) return Fail("expected value");
    return Status::OK();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// One parsed entry, pre-validation.
struct RawEntry {
  std::string predicate;
  uint64_t arity = 0;
  std::string adornment;
  CatalogEntry entry;
};

Status ParseEntryObject(CatalogJsonParser* p, RawEntry* out) {
  if (!p->Consume('{')) return p->Fail("expected '{' for entry");
  if (p->Consume('}')) return Status::OK();
  while (true) {
    std::string key;
    LDL_RETURN_NOT_OK(p->ParseString(&key));
    if (!p->Consume(':')) return p->Fail("expected ':'");
    if (p->Peek('"')) {
      std::string value;
      LDL_RETURN_NOT_OK(p->ParseString(&value));
      if (key == "predicate") out->predicate = std::move(value);
      else if (key == "adornment") out->adornment = std::move(value);
      // else: unknown string key — ignored for forward compatibility.
    } else {
      std::string token;
      LDL_RETURN_NOT_OK(p->ParseScalarToken(&token));
      auto u64 = [&]() { return std::strtoull(token.c_str(), nullptr, 10); };
      auto f64 = [&]() { return std::strtod(token.c_str(), nullptr); };
      if (key == "arity") out->arity = u64();
      else if (key == "card") out->entry.card = f64();
      else if (key == "weight") out->entry.weight = f64();
      else if (key == "observations") out->entry.observations = u64();
      else if (key == "first_epoch") out->entry.first_epoch = u64();
      else if (key == "last_epoch") out->entry.last_epoch = u64();
      // else: unknown scalar key — ignored for forward compatibility.
    }
    if (p->Consume('}')) return Status::OK();
    if (!p->Consume(',')) return p->Fail("expected ',' or '}'");
  }
}

}  // namespace

void StatisticsCatalog::Observe(const PredicateId& pred, const Adornment& adn,
                                double card, uint64_t epoch) {
  if (!std::isfinite(card) || card < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const AdornedPredicate key{pred, adn};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.max_entries) {
      ++dropped_observations_;
      return;
    }
    it = entries_.emplace(key, CatalogEntry{}).first;
    it->second.first_epoch = epoch;
  }
  CatalogEntry& e = it->second;
  const double aged = options_.decay * e.weight;
  e.card = (aged * e.card + card) / (aged + 1.0);
  e.weight = aged + 1.0;
  e.observations += 1;
  e.last_epoch = epoch;
  ++total_observations_;
}

void StatisticsCatalog::ObserveMeasured(const MeasuredStatistics& measured,
                                        uint64_t epoch) {
  for (const auto& [key, card] : measured.Entries()) {
    Observe(key.pred, key.adornment, card, epoch);
  }
}

bool StatisticsCatalog::Lookup(const PredicateId& pred, const Adornment& adn,
                               CatalogEntry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(AdornedPredicate{pred, adn});
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

size_t StatisticsCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t StatisticsCatalog::total_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_observations_;
}

uint64_t StatisticsCatalog::dropped_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_observations_;
}

std::vector<std::pair<AdornedPredicate, CatalogEntry>>
StatisticsCatalog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

MeasuredStatistics StatisticsCatalog::BlendedOverlay(
    const Statistics& stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  MeasuredStatistics overlay;
  for (const auto& [key, e] : entries_) {
    if (e.weight <= 0) continue;
    if (key.adornment.AllArgsFree() && stats.Has(key.pred)) {
      // A real estimate exists: ramp from it toward the measured truth as
      // evidence accumulates, so one noisy observation cannot hijack a
      // well-grounded catalog cardinality.
      const double est = stats.Get(key.pred).cardinality;
      const double blend = e.weight / (e.weight + options_.blend_weight);
      overlay.Set(key.pred, key.adornment,
                  blend * e.card + (1.0 - blend) * est);
    } else if (e.weight >= options_.min_weight) {
      // Adorned bindings and derived predicates have only the default-stats
      // placeholder to "blend" with; the measurement is strictly better.
      overlay.Set(key.pred, key.adornment, e.card);
    }
  }
  return overlay;
}

void StatisticsCatalog::WriteJson(std::ostream& os) const {
  os << ToJson();
}

std::string StatisticsCatalog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  AppendField(&out, "version", static_cast<uint64_t>(1));
  AppendField(&out, "decay", options_.decay);
  StrAppend(&out, "\"entries\":[");
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    std::string obj = "{";
    AppendField(&obj, "predicate", key.pred.name);
    AppendField(&obj, "arity", static_cast<uint64_t>(key.pred.arity));
    AppendField(&obj, "adornment", key.adornment.ToString());
    AppendField(&obj, "card", e.card);
    AppendField(&obj, "weight", e.weight);
    AppendField(&obj, "observations", e.observations);
    AppendField(&obj, "first_epoch", e.first_epoch);
    AppendField(&obj, "last_epoch", e.last_epoch);
    obj.back() = '}';  // replace the trailing comma
    StrAppend(&out, obj);
  }
  StrAppend(&out, "]}");
  return out;
}

Status StatisticsCatalog::MergeJson(const std::string& text) {
  CatalogJsonParser p(text);
  if (!p.Consume('{')) return p.Fail("expected '{'");
  std::vector<RawEntry> raw;
  if (!p.Consume('}')) {
    while (true) {
      std::string key;
      LDL_RETURN_NOT_OK(p.ParseString(&key));
      if (!p.Consume(':')) return p.Fail("expected ':'");
      if (key == "entries") {
        if (!p.Consume('[')) return p.Fail("expected '['");
        if (!p.Consume(']')) {
          while (true) {
            RawEntry entry;
            LDL_RETURN_NOT_OK(ParseEntryObject(&p, &entry));
            raw.push_back(std::move(entry));
            if (p.Consume(']')) break;
            if (!p.Consume(',')) return p.Fail("expected ',' or ']'");
          }
        }
      } else if (p.Peek('"')) {
        std::string ignored;
        LDL_RETURN_NOT_OK(p.ParseString(&ignored));
      } else {
        std::string token;
        LDL_RETURN_NOT_OK(p.ParseScalarToken(&token));
        if (key == "version") {
          const uint64_t version = std::strtoull(token.c_str(), nullptr, 10);
          if (version > 1) {
            return Status::InvalidArgument(
                StrCat("stats catalog: unsupported version ", version));
          }
        }
        // "decay" and unknown scalars are informational.
      }
      if (p.Consume('}')) break;
      if (!p.Consume(',')) return p.Fail("expected ',' or '}'");
    }
  }
  if (!p.AtEnd()) return p.Fail("trailing content");

  // Validate fully before mutating: an import either applies or doesn't.
  std::vector<std::pair<AdornedPredicate, CatalogEntry>> parsed;
  parsed.reserve(raw.size());
  for (const RawEntry& r : raw) {
    if (r.predicate.empty()) {
      return Status::InvalidArgument("stats catalog: entry without predicate");
    }
    LDL_ASSIGN_OR_RETURN(Adornment adn, Adornment::FromString(r.adornment));
    if (adn.size() != r.arity) {
      return Status::InvalidArgument(
          StrCat("stats catalog: ", r.predicate, "/", r.arity,
                 ": adornment \"", r.adornment, "\" does not match arity"));
    }
    if (!std::isfinite(r.entry.card) || r.entry.card < 0 ||
        !std::isfinite(r.entry.weight) || r.entry.weight < 0) {
      return Status::InvalidArgument(
          StrCat("stats catalog: ", r.predicate, "/", r.arity,
                 ": non-finite or negative card/weight"));
    }
    parsed.emplace_back(
        AdornedPredicate{PredicateId{r.predicate, r.arity}, adn}, r.entry);
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, imported] : parsed) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      if (entries_.size() >= options_.max_entries) {
        ++dropped_observations_;
        continue;
      }
      entries_.emplace(key, imported);
      total_observations_ += imported.observations;
      continue;
    }
    // Merge into an existing stream: the resident weight ages one decay
    // step, then the imported evidence folds in at its own weight — an
    // import into an empty slot is an exact copy.
    CatalogEntry& e = it->second;
    const double aged = options_.decay * e.weight;
    const double total = aged + imported.weight;
    if (total > 0) {
      e.card = (aged * e.card + imported.weight * imported.card) / total;
    }
    e.weight = total;
    e.observations += imported.observations;
    e.first_epoch = std::min(e.first_epoch, imported.first_epoch);
    e.last_epoch = std::max(e.last_epoch, imported.last_epoch);
    total_observations_ += imported.observations;
  }
  return Status::OK();
}

Status StatisticsCatalog::ExportFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        StrCat("cannot write stats catalog: ", path));
  }
  out << ToJson() << "\n";
  return Status::OK();
}

Status StatisticsCatalog::ImportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot read stats catalog: ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return MergeJson(buffer.str());
}

void StatisticsCatalog::ExportTo(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  metrics->gauge("feedback.catalog_entries")
      ->Set(static_cast<double>(entries_.size()));
  metrics->gauge("feedback.observations")
      ->Set(static_cast<double>(total_observations_));
  metrics->gauge("feedback.dropped_observations")
      ->Set(static_cast<double>(dropped_observations_));
}

size_t DriftDetector::Check(const StatisticsCatalog& catalog,
                            Statistics* stats, MetricsRegistry* metrics) {
  if (stats == nullptr) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  double max_q = 1.0;
  std::vector<DriftEvent> tripped;
  for (const auto& [key, e] : catalog.Entries()) {
    // Only hot all-free entries of predicates with *real* statistics can
    // drift: everything else costs through the default-stats placeholder,
    // which is not an estimate the epoch should churn over.
    if (!key.adornment.AllArgsFree()) continue;
    if (e.observations < options_.hot_observations) continue;
    if (!stats->Has(key.pred)) continue;
    const double est = stats->Get(key.pred).cardinality;
    const double q = QError(est, e.card);
    if (q > max_q) max_q = q;
    if (q < options_.drift_q_threshold) continue;
    auto it = tripped_epoch_.find(key);
    if (it != tripped_epoch_.end() && it->second == stats->epoch()) {
      continue;  // already reported against this statistics generation
    }
    DriftEvent event;
    event.key = key;
    event.measured = e.card;
    event.estimated = est;
    event.q_error = q;
    event.old_epoch = stats->epoch();
    tripped.push_back(event);
  }
  last_max_q_ = max_q;
  if (metrics != nullptr) {
    metrics->gauge("feedback.max_q_error")->Set(max_q);
  }
  if (tripped.empty()) return 0;

  // One epoch bump per detection, however many keys diverged: the epoch
  // numbers statistics generations, not individual divergences.
  const uint64_t new_epoch = stats->epoch() + 1;
  stats->set_epoch(new_epoch);
  for (DriftEvent& event : tripped) {
    event.new_epoch = new_epoch;
    tripped_epoch_[event.key] = new_epoch;
    history_.push_back(event);
  }
  if (history_.size() > kMaxHistory) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() -
                                                   kMaxHistory));
  }
  drift_events_ += tripped.size();
  if (metrics != nullptr) {
    metrics->counter("feedback.drift_events")
        ->Increment(static_cast<uint64_t>(tripped.size()));
  }
  return tripped.size();
}

uint64_t DriftDetector::drift_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_events_;
}

double DriftDetector::last_max_q_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_max_q_;
}

std::vector<DriftEvent> DriftDetector::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::string RenderStatsJson(const StatisticsCatalog* catalog,
                            const DriftDetector* drift,
                            const Statistics* stats) {
  std::string out = "{";
  if (stats != nullptr) {
    AppendField(&out, "stats_epoch", stats->epoch());
  }
  if (drift != nullptr) {
    AppendField(&out, "drift_events", drift->drift_events());
    AppendField(&out, "last_max_q_error", drift->last_max_q_error());
  }
  if (catalog != nullptr) {
    StrAppend(&out, "\"catalog\":{");
    AppendField(&out, "entries", static_cast<uint64_t>(catalog->size()));
    AppendField(&out, "observations", catalog->total_observations());
    AppendField(&out, "dropped_observations",
                catalog->dropped_observations());
    AppendField(&out, "decay", catalog->options().decay);
    AppendField(&out, "drift_q_threshold",
                catalog->options().drift_q_threshold);
    out.back() = '}';
    StrAppend(&out, ",\"entries\":[");
    bool first = true;
    for (const auto& [key, e] : catalog->Entries()) {
      if (!first) out.push_back(',');
      first = false;
      std::string obj = "{";
      AppendField(&obj, "predicate", key.pred.name);
      AppendField(&obj, "arity", static_cast<uint64_t>(key.pred.arity));
      AppendField(&obj, "adornment", key.adornment.ToString());
      AppendField(&obj, "card", e.card);
      AppendField(&obj, "weight", e.weight);
      AppendField(&obj, "observations", e.observations);
      AppendField(&obj, "first_epoch", e.first_epoch);
      AppendField(&obj, "last_epoch", e.last_epoch);
      if (stats != nullptr && key.adornment.AllArgsFree() &&
          stats->Has(key.pred)) {
        const double est = stats->Get(key.pred).cardinality;
        AppendField(&obj, "estimate", est);
        AppendField(&obj, "q_error", QError(est, e.card));
      }
      obj.back() = '}';
      StrAppend(&out, obj);
    }
    StrAppend(&out, "],");
    if (stats != nullptr) {
      // Coverage gaps: predicates the statistics know that no query has
      // measured yet — the operator's "what is still flying blind" list.
      StrAppend(&out, "\"unobserved\":[");
      first = true;
      for (const PredicateId& pred : stats->Predicates()) {
        CatalogEntry ignored;
        if (catalog->Lookup(pred, Adornment::AllFree(pred.arity), &ignored)) {
          continue;
        }
        if (!first) out.push_back(',');
        first = false;
        std::string obj = "{";
        AppendField(&obj, "predicate", pred.name);
        AppendField(&obj, "arity", static_cast<uint64_t>(pred.arity));
        AppendField(&obj, "cardinality", stats->Get(pred).cardinality);
        obj.back() = '}';
        StrAppend(&out, obj);
      }
      StrAppend(&out, "],");
    }
  }
  if (drift != nullptr) {
    StrAppend(&out, "\"drift_history\":[");
    bool first = true;
    for (const DriftEvent& event : drift->history()) {
      if (!first) out.push_back(',');
      first = false;
      std::string obj = "{";
      AppendField(&obj, "predicate", event.key.pred.name);
      AppendField(&obj, "arity",
                  static_cast<uint64_t>(event.key.pred.arity));
      AppendField(&obj, "adornment", event.key.adornment.ToString());
      AppendField(&obj, "measured", event.measured);
      AppendField(&obj, "estimated", event.estimated);
      AppendField(&obj, "q_error", event.q_error);
      AppendField(&obj, "old_epoch", event.old_epoch);
      AppendField(&obj, "new_epoch", event.new_epoch);
      obj.back() = '}';
      StrAppend(&out, obj);
    }
    StrAppend(&out, "],");
  }
  if (out.back() == ',') out.pop_back();
  StrAppend(&out, "}");
  if (out == "{}") return "{}";
  return out;
}

}  // namespace ldl
