// The execution model of the paper's section 4: processing trees with AND
// (join), OR (union) and contracted-clique (CC, fixpoint) nodes — and the
// section 5 transformations that define the execution space.
//
// Reproduces the structure of Figures 4-1 (processing graph with clique
// contraction) and 4-2 (flatten distributes a join over a union).
//
// Build & run:  ./build/examples/processing_tree_demo

#include <cstdio>

#include "ast/parser.h"
#include "plan/processing_tree.h"
#include "plan/transform.h"

int main() {
  // The shape of Figure 2-1: derived predicates over base relations with a
  // recursive clique (P2).
  auto program = ldl::ParseProgram(R"(
    p1(X, Y) <- b1(X, Z), p2(Z, Y).
    p1(X, Y) <- b2(X, Y).
    p2(X, Y) <- b3(X, Z), p2(Z, Y).
    p2(X, Y) <- b4(X, Y).
  )");
  if (!program.ok()) return 1;

  auto goal = ldl::ParseLiteral("p1(1, Y)");
  auto tree = ldl::BuildProcessingTree(*program, *goal);
  if (!tree.ok()) {
    std::printf("%s\n", tree.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 4-1: processing tree for p1(1, Y)? ===\n");
  std::printf("(the recursive clique {p2} is contracted into one CC node\n"
              " whose children are the fixpoint's operands)\n\n%s\n",
              (*tree)->ToString().c_str());

  // Section 5 transformations.
  ldl::PlanNode* root = tree->get();
  ldl::PlanNode* and_node = root->children[0].get();

  std::printf("=== MP: pipeline the first AND child ===\n");
  (void)ldl::TransformMp(and_node->children[0].get());
  std::printf("%s\n", root->ToString().c_str());

  std::printf("=== PR: permute the AND node's children ===\n");
  (void)ldl::TransformPr(and_node, {1, 0});
  std::printf("%s\n", root->ToString().c_str());

  std::printf("=== EL + PA: label the CC node with magic and a SIP ===\n");
  ldl::PlanNode* cc = and_node->children[0].get();  // after PR, p2 is first
  (void)ldl::TransformPa(cc, {{0}, {1, 0}}, "magic");
  std::printf("%s\n", root->ToString().c_str());

  // Figure 4-2: flatten.
  auto program2 = ldl::ParseProgram(R"(
    u(X, Y) <- alt1(X, Y).
    u(X, Y) <- alt2(X, Y).
    q(X, Z) <- base(X, Y), u(Y, Z).
  )");
  auto goal2 = ldl::ParseLiteral("q(X, Z)");
  auto tree2 = ldl::BuildProcessingTree(*program2, *goal2);
  if (!tree2.ok()) return 1;
  ldl::PlanNode* and2 = (*tree2)->children[0].get();

  std::printf("=== Figure 4-2 (before): join over a union ===\n%s\n",
              and2->ToString().c_str());
  auto flattened = ldl::TransformFlatten(*and2, 1);
  if (flattened.ok()) {
    std::printf("=== Figure 4-2 (after FU): union of joins ===\n%s\n",
                (*flattened)->ToString().c_str());
    auto back = ldl::TransformUnflatten(**flattened);
    if (back.ok()) {
      std::printf("=== unflatten restores the original shape ===\n%s\n",
                  (*back)->ToString().c_str());
    }
  }
  return 0;
}
