#include "ast/rule.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ldl {

std::vector<std::string> Rule::Variables() const {
  std::vector<std::string> all;
  head_.CollectVariables(&all);
  for (const Literal& l : body_) l.CollectVariables(&all);
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (auto& v : all) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

bool Rule::IsRangeRestricted() const {
  // Variables grounded directly by positive non-builtin literals.
  std::set<std::string> grounded;
  for (const Literal& l : body_) {
    if (l.IsBuiltin() || l.negated()) continue;
    std::vector<std::string> vars;
    l.CollectVariables(&vars);
    grounded.insert(vars.begin(), vars.end());
  }
  // Propagate through `=` builtins until fixpoint: X = expr grounds X when
  // all of expr's variables are grounded (and vice versa).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : body_) {
      if (l.builtin() != BuiltinKind::kEq) continue;
      const Term& lhs = l.args()[0];
      const Term& rhs = l.args()[1];
      auto all_ground = [&grounded](const Term& t) {
        std::vector<std::string> vars;
        t.CollectVariables(&vars);
        return std::all_of(vars.begin(), vars.end(),
                           [&grounded](const std::string& v) {
                             return grounded.count(v) > 0;
                           });
      };
      auto ground_all = [&grounded, &changed](const Term& t) {
        std::vector<std::string> vars;
        t.CollectVariables(&vars);
        for (auto& v : vars) {
          if (grounded.insert(v).second) changed = true;
        }
      };
      if (all_ground(rhs) && !all_ground(lhs)) ground_all(lhs);
      if (all_ground(lhs) && !all_ground(rhs)) ground_all(rhs);
    }
  }
  std::vector<std::string> head_vars;
  head_.CollectVariables(&head_vars);
  return std::all_of(
      head_vars.begin(), head_vars.end(),
      [&grounded](const std::string& v) { return grounded.count(v) > 0; });
}

std::string Rule::ToString() const {
  std::ostringstream os;
  os << head_.ToString();
  if (!body_.empty()) {
    os << " <- ";
    bool first = true;
    for (const Literal& l : body_) {
      if (!first) os << ", ";
      first = false;
      os << l.ToString();
    }
  }
  os << '.';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rule& rule) {
  return os << rule.ToString();
}

}  // namespace ldl
