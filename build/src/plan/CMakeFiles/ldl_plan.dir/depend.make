# Empty dependencies file for ldl_plan.
# This may be replaced when dependencies are built.
