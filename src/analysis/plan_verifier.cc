#include "analysis/plan_verifier.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "base/strings.h"
#include "graph/binding.h"
#include "safety/safety.h"

namespace ldl {

namespace {

SourceLocation NodeLoc(const PlanNode& node) {
  return SourceLocation::For(
      StrCat(PlanNodeKindToString(node.kind), " ", node.goal.ToString()));
}

bool IsPermutation(const std::vector<size_t>& perm, size_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (size_t p : perm) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

/// The EL label sets of §5 (mirrors plan/transform.cc's LabelsFor).
const std::set<std::string>& MethodsFor(PlanNodeKind kind) {
  static const auto* and_labels =
      new std::set<std::string>{"nested-loop", "index-join", "hash-join"};
  static const auto* or_labels = new std::set<std::string>{"union"};
  static const auto* cc_labels =
      new std::set<std::string>{"naive", "seminaive", "magic", "counting"};
  static const auto* scan_labels =
      new std::set<std::string>{"scan", "index-scan"};
  static const auto* builtin_labels = new std::set<std::string>{"builtin"};
  switch (kind) {
    case PlanNodeKind::kAnd:
      return *and_labels;
    case PlanNodeKind::kOr:
      return *or_labels;
    case PlanNodeKind::kCc:
      return *cc_labels;
    case PlanNodeKind::kScan:
      return *scan_labels;
    case PlanNodeKind::kBuiltin:
      return *builtin_labels;
  }
  return *scan_labels;
}

/// A node is "annotated" when it carries a full-arity adornment: builders
/// leave AND bindings empty; Optimizer::AnnotateTree fills every node.
bool HasBinding(const PlanNode& node) {
  return node.binding.size() == node.goal.arity() && node.goal.arity() > 0;
}

}  // namespace

PlanVerifier::PlanVerifier(const Program& program, PlanVerifierOptions options)
    : program_(program),
      options_(options),
      graph_(DependencyGraph::Build(program)) {}

Status PlanVerifier::Verify(const PlanNode& root, DiagnosticSink* sink) const {
  size_t before = sink->error_count();
  VerifyNode(root, sink);
  if (sink->error_count() == before) return Status::OK();
  return sink->ToStatus(StatusCode::kInternal);
}

Status PlanVerifier::Verify(const PlanNode& root) const {
  DiagnosticSink sink;
  return Verify(root, &sink);
}

void PlanVerifier::VerifyNode(const PlanNode& node,
                              DiagnosticSink* sink) const {
  VerifyShape(node, sink);
  VerifyMethod(node, sink);
  switch (node.kind) {
    case PlanNodeKind::kScan:
      VerifyScan(node, sink);
      break;
    case PlanNodeKind::kBuiltin:
      VerifyBuiltin(node, sink);
      break;
    case PlanNodeKind::kAnd:
      VerifyAnd(node, sink);
      break;
    case PlanNodeKind::kOr:
      VerifyOr(node, sink);
      break;
    case PlanNodeKind::kCc:
      VerifyCc(node, sink);
      break;
  }
  for (const auto& child : node.children) {
    if (child == nullptr) {
      sink->Error("V006", "null child pointer", NodeLoc(node));
      continue;
    }
    VerifyNode(*child, sink);
  }
}

void PlanVerifier::VerifyShape(const PlanNode& node,
                               DiagnosticSink* sink) const {
  if (node.binding.size() != 0 && node.binding.size() != node.goal.arity()) {
    sink->Error("V006",
                StrCat("adornment ", node.binding.ToString(), " has size ",
                       node.binding.size(), " but the goal has arity ",
                       node.goal.arity()),
                NodeLoc(node));
  }
  for (size_t i = 0; i < node.projection.size(); ++i) {
    if (node.projection[i] >= node.goal.arity()) {
      sink->Error("V006",
                  StrCat("projection column ", node.projection[i],
                         " out of range for arity ", node.goal.arity()),
                  NodeLoc(node));
    }
    if (i > 0 && node.projection[i] <= node.projection[i - 1]) {
      sink->Error("V006", "projection columns not sorted and duplicate-free",
                  NodeLoc(node));
    }
  }
}

void PlanVerifier::VerifyMethod(const PlanNode& node,
                                DiagnosticSink* sink) const {
  const auto& methods = MethodsFor(node.kind);
  if (!methods.count(node.method)) {
    sink->Error("V004",
                StrCat("method '", node.method, "' is not available for ",
                       PlanNodeKindToString(node.kind), " nodes"),
                NodeLoc(node));
    return;
  }
  if (node.kind == PlanNodeKind::kCc) {
    if (node.method == "magic" && !options_.allow_magic) {
      sink->Error("V004", "magic chosen but disabled by optimizer options",
                  NodeLoc(node));
    }
    if (node.method == "counting" && !options_.allow_counting) {
      sink->Error("V004", "counting chosen but disabled by optimizer options",
                  NodeLoc(node));
    }
  }
}

void PlanVerifier::VerifyScan(const PlanNode& node,
                              DiagnosticSink* sink) const {
  if (node.goal.IsBuiltin()) {
    sink->Error("V005", "scan node holds a builtin goal", NodeLoc(node));
    return;
  }
  if (program_.IsDerived(node.goal.predicate())) {
    sink->Error("V005",
                StrCat("scan of derived predicate ",
                       node.goal.predicate().ToString(),
                       " (tree not expanded)"),
                NodeLoc(node));
  }
  if (!node.children.empty()) {
    sink->Error("V005", "scan node has children", NodeLoc(node));
  }
}

void PlanVerifier::VerifyBuiltin(const PlanNode& node,
                                 DiagnosticSink* sink) const {
  if (!node.goal.IsBuiltin()) {
    sink->Error("V005", "builtin node holds a non-builtin goal",
                NodeLoc(node));
  }
  if (!node.children.empty()) {
    sink->Error("V005", "builtin node has children", NodeLoc(node));
  }
}

void PlanVerifier::VerifyAnd(const PlanNode& node,
                             DiagnosticSink* sink) const {
  if (node.rule_index >= program_.rules().size()) {
    sink->Error("V001",
                StrCat("AND node's rule index ", node.rule_index,
                       " is out of range"),
                NodeLoc(node));
    return;
  }
  const Rule& rule = program_.rules()[node.rule_index];
  if (!(node.goal == rule.head())) {
    sink->Error("V005",
                StrCat("AND goal ", node.goal.ToString(),
                       " differs from the head of rule ", node.rule_index,
                       " (", rule.head().ToString(), ")"),
                NodeLoc(node));
  }
  const size_t body_size = rule.body().size();
  if (node.children.size() != body_size ||
      !IsPermutation(node.body_order, body_size)) {
    sink->Error("V001",
                StrCat("AND children must cover the ", body_size,
                       " body literals of rule ", node.rule_index,
                       " under a body_order permutation (got ",
                       node.children.size(), " children, order of size ",
                       node.body_order.size(), ")"),
                NodeLoc(node));
    return;
  }
  for (size_t j = 0; j < node.children.size(); ++j) {
    if (node.children[j] == nullptr) continue;  // reported by VerifyNode
    const Literal& lit = rule.body()[node.body_order[j]];
    if (!(node.children[j]->goal == lit)) {
      sink->Error("V001",
                  StrCat("child ", j, " computes ",
                         node.children[j]->goal.ToString(),
                         " but body position ", node.body_order[j], " is ",
                         lit.ToString()),
                  NodeLoc(node));
    }
  }

  if (!HasBinding(node)) return;  // unannotated tree: nothing more to check

  // V003: the chosen execution order must be effectively computable under
  // the incoming adornment (paper §8.1) — the safety the optimizer folds
  // into the search as infinite cost.
  if (options_.check_ec) {
    Status ec = CheckRuleEc(rule, node.body_order, node.binding);
    if (!ec.ok()) {
      sink->Error("V003",
                  StrCat("body order is not effectively computable under "
                         "adornment ",
                         node.binding.ToString(), ": ", ec.message()),
                  NodeLoc(node));
    }
  }

  // V002: child adornments must equal the sideways-information-passing walk
  // in execution order, exactly as the engine will evaluate the join.
  BoundVars bound;
  BindHeadVariables(rule.head(), node.binding, &bound);
  for (size_t j = 0; j < node.children.size(); ++j) {
    if (node.children[j] == nullptr) continue;
    const Literal& lit = rule.body()[node.body_order[j]];
    Adornment expected = AdornLiteral(lit, bound);
    const Adornment& actual = node.children[j]->binding;
    if (actual.size() == expected.size() && actual != expected) {
      sink->Error("V002",
                  StrCat("child ", j, " (", lit.ToString(),
                         ") is adorned ", actual.ToString(),
                         " but the SIP walk yields ", expected.ToString()),
                  NodeLoc(node));
    }
    PropagateBindings(lit, &bound);
  }
}

void PlanVerifier::VerifyOr(const PlanNode& node, DiagnosticSink* sink) const {
  if (node.goal.IsBuiltin() || !program_.IsDerived(node.goal.predicate())) {
    sink->Error("V005",
                StrCat("OR goal ", node.goal.ToString(),
                       " is not a derived predicate"),
                NodeLoc(node));
    return;
  }
  const PredicateId pred = node.goal.predicate();
  if (graph_.IsRecursive(pred)) {
    sink->Error("V005",
                StrCat("recursive predicate ", pred.ToString(),
                       " must be a contracted CC node, not an OR node"),
                NodeLoc(node));
    return;
  }
  // V001: exactly one alternative per defining rule.
  std::multiset<size_t> expected(program_.RulesFor(pred).begin(),
                                 program_.RulesFor(pred).end());
  std::multiset<size_t> actual;
  for (const auto& child : node.children) {
    if (child == nullptr) continue;
    if (child->kind != PlanNodeKind::kAnd) {
      sink->Error("V005", "OR child is not an AND node", NodeLoc(node));
      continue;
    }
    actual.insert(child->rule_index);
  }
  if (actual != expected) {
    sink->Error("V001",
                StrCat("OR children must cover exactly the ", expected.size(),
                       " rules defining ", pred.ToString()),
                NodeLoc(node));
  }
  // V002: the union passes its incoming adornment through unchanged, and a
  // pipelined union that receives no bindings contradicts its MP marking.
  if (HasBinding(node)) {
    if (!node.materialized && node.binding.AllArgsFree()) {
      sink->Error("V002",
                  "pipelined OR node under an all-free adornment "
                  "(materialize/pipeline marking inconsistent)",
                  NodeLoc(node));
    }
    for (const auto& child : node.children) {
      if (child == nullptr || child->kind != PlanNodeKind::kAnd) continue;
      if (HasBinding(*child) && child->binding != node.binding) {
        sink->Error("V002",
                    StrCat("OR alternative for rule ", child->rule_index,
                           " is adorned ", child->binding.ToString(),
                           " but the union is adorned ",
                           node.binding.ToString()),
                    NodeLoc(node));
      }
    }
  }
}

void PlanVerifier::VerifyCc(const PlanNode& node, DiagnosticSink* sink) const {
  if (node.goal.IsBuiltin() || !program_.IsDerived(node.goal.predicate())) {
    sink->Error("V005",
                StrCat("CC goal ", node.goal.ToString(),
                       " is not a derived predicate"),
                NodeLoc(node));
    return;
  }
  int ci = graph_.CliqueIndex(node.goal.predicate());
  if (ci < 0) {
    sink->Error("V005",
                StrCat("CC goal ", node.goal.predicate().ToString(),
                       " is not recursive in the program"),
                NodeLoc(node));
    return;
  }
  const RecursiveClique& clique = graph_.cliques()[ci];
  std::set<PredicateId> expected_preds(clique.predicates.begin(),
                                       clique.predicates.end());
  std::set<PredicateId> actual_preds(node.clique_predicates.begin(),
                                     node.clique_predicates.end());
  if (expected_preds != actual_preds) {
    sink->Error("V005",
                "CC clique predicates differ from the program's "
                "dependency-graph clique",
                NodeLoc(node));
  }
  std::set<size_t> expected_rules(clique.exit_rules.begin(),
                                  clique.exit_rules.end());
  expected_rules.insert(clique.recursive_rules.begin(),
                        clique.recursive_rules.end());
  std::set<size_t> actual_rules(node.clique_rules.begin(),
                                node.clique_rules.end());
  if (expected_rules != actual_rules) {
    sink->Error("V001",
                StrCat("CC node must carry exactly the ",
                       expected_rules.size(), " rules of its clique"),
                NodeLoc(node));
  }
  // V001: one c-permutation per clique rule (the PA transformation's shape).
  if (node.clique_orders.size() != node.clique_rules.size()) {
    sink->Error("V001",
                StrCat("CC node carries ", node.clique_orders.size(),
                       " body orders for ", node.clique_rules.size(),
                       " clique rules"),
                NodeLoc(node));
  } else {
    for (size_t i = 0; i < node.clique_rules.size(); ++i) {
      if (node.clique_rules[i] >= program_.rules().size()) {
        sink->Error("V001",
                    StrCat("CC clique rule index ", node.clique_rules[i],
                           " is out of range"),
                    NodeLoc(node));
        continue;
      }
      const Rule& rule = program_.rules()[node.clique_rules[i]];
      if (!IsPermutation(node.clique_orders[i], rule.body().size())) {
        sink->Error("V001",
                    StrCat("c-permutation for clique rule ",
                           node.clique_rules[i],
                           " is not a permutation of its ",
                           rule.body().size(), " body literals"),
                    NodeLoc(node));
      }
    }
  }
  // V005: the CC's children are the fixpoint operator's operands — the
  // non-clique literals of the clique's rules.
  for (const auto& child : node.children) {
    if (child == nullptr || child->goal.IsBuiltin()) continue;
    if (expected_preds.count(child->goal.predicate())) {
      sink->Error("V005",
                  StrCat("CC child computes clique predicate ",
                         child->goal.predicate().ToString(),
                         "; clique members must stay contracted"),
                  NodeLoc(node));
    }
  }
}

}  // namespace ldl
