#include "obs/resource.h"

#include <cstdio>

namespace ldl {
namespace {

std::string HumanBytes(uint64_t n) {
  char buf[32];
  if (n >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(n) / (1024.0 * 1024.0));
  } else if (n >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", static_cast<double>(n) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace

Status ResourceAccountant::CheckBudget() const {
  int level = 0;
  for (const ResourceAccountant* acc = this; acc != nullptr;
       acc = acc->parent_, ++level) {
    const ResourceBudget& b = acc->budget_;
    if (b.max_bytes != 0) {
      uint64_t cur = acc->current_bytes_.load(std::memory_order_relaxed);
      if (cur > b.max_bytes) {
        return Status::ResourceExhausted(
            "memory budget exceeded at accountant level " +
            std::to_string(level) + ": " + HumanBytes(cur) + " held > " +
            HumanBytes(b.max_bytes) + " allowed");
      }
    }
    if (b.max_tuples_examined != 0) {
      uint64_t seen = acc->tuples_examined_.load(std::memory_order_relaxed);
      if (seen > b.max_tuples_examined) {
        return Status::ResourceExhausted(
            "tuple budget exceeded at accountant level " +
            std::to_string(level) + ": " + std::to_string(seen) +
            " tuples examined > " + std::to_string(b.max_tuples_examined) +
            " allowed");
      }
    }
  }
  return Status::OK();
}

Status CancellationToken::Check() {
  checks_.fetch_add(1, std::memory_order_relaxed);
  for (CancellationToken* tok = this; tok != nullptr; tok = tok->parent_) {
    if (tok->cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (tok->deadline_.has_value() &&
        std::chrono::steady_clock::now() > *tok->deadline_) {
      return Status::DeadlineExceeded("query ran past its deadline");
    }
    if (tok->accountant_ != nullptr) {
      LDL_RETURN_NOT_OK(tok->accountant_->CheckBudget());
    }
  }
  return Status::OK();
}

}  // namespace ldl
