#ifndef LDLOPT_STORAGE_DATABASE_H_
#define LDLOPT_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/literal.h"
#include "base/status.h"
#include "storage/relation.h"

namespace ldl {

/// The fact base: named relations keyed by predicate name/arity.
/// Relations are owned by the database; engine components hold raw pointers
/// whose lifetime is bounded by the database's.
class Database {
 public:
  Database() = default;

  // Movable, not copyable (relations can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the relation for `pred`, creating an empty one if absent.
  Relation* GetOrCreate(const PredicateId& pred);

  /// Attaches a resource accountant to every current relation and to
  /// relations created later; nullptr detaches. Used on per-query scratch
  /// databases so derived-tuple storage counts against the query's budget.
  void set_accountant(ResourceAccountant* accountant);
  ResourceAccountant* accountant() const { return accountant_; }

  /// Returns the relation or nullptr.
  Relation* Find(const PredicateId& pred);
  const Relation* Find(const PredicateId& pred) const;

  bool Exists(const PredicateId& pred) const { return Find(pred) != nullptr; }

  /// Inserts a ground fact literal, creating the relation on demand.
  Status AddFact(const Literal& fact);

  /// All predicates with a (possibly empty) relation, sorted by name.
  std::vector<PredicateId> Predicates() const;

  size_t TotalTuples() const;

  std::string ToString() const;

 private:
  std::unordered_map<PredicateId, std::unique_ptr<Relation>, PredicateIdHash>
      relations_;
  ResourceAccountant* accountant_ = nullptr;
};

}  // namespace ldl

#endif  // LDLOPT_STORAGE_DATABASE_H_
