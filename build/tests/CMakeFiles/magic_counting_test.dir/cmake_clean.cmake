file(REMOVE_RECURSE
  "CMakeFiles/magic_counting_test.dir/magic_counting_test.cc.o"
  "CMakeFiles/magic_counting_test.dir/magic_counting_test.cc.o.d"
  "magic_counting_test"
  "magic_counting_test.pdb"
  "magic_counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
