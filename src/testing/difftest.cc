#include "testing/difftest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "base/strings.h"
#include "engine/query_eval.h"
#include "ldl/ldl.h"
#include "obs/feedback.h"
#include "plan/interpreter.h"
#include "plan/processing_tree.h"
#include "storage/statistics.h"
#include "storage/tuple.h"

namespace ldl {
namespace testing {

namespace {

/// Appends up to `limit` tuples of `from - other` (set difference over the
/// canonical sorted vectors) to `out`.
void AppendDiffSample(const std::vector<Tuple>& from,
                      const std::vector<Tuple>& other, const char* label,
                      size_t limit, std::string* out) {
  std::vector<Tuple> diff;
  std::set_difference(from.begin(), from.end(), other.begin(), other.end(),
                      std::back_inserter(diff));
  if (diff.empty()) return;
  StrAppend(out, "  ", label, " (", diff.size(), "): ");
  for (size_t i = 0; i < diff.size() && i < limit; ++i) {
    StrAppend(out, i ? ", " : "", TupleToString(diff[i]));
  }
  if (diff.size() > limit) StrAppend(out, ", ...");
  StrAppend(out, "\n");
}

/// Evaluation context shared across the matrix for one program.
struct Harness {
  const GeneratedProgram& prog;
  Program program;       // rules only
  Database db;           // EDB
  std::vector<Tuple> ref_canonical;
  std::string ref_fingerprint;

  explicit Harness(const GeneratedProgram& p) : prog(p) {}
};

void RecordAnswers(Harness* h, DiffOutcome* out, const std::string& config,
                   const Result<QueryResult>& result) {
  ConfigResult cr;
  cr.config = config;
  if (!result.ok()) {
    cr.ok = false;
    cr.detail = result.status().ToString();
    out->config_error = true;
    StrAppend(&out->detail, config, ": evaluation failed: ", cr.detail, "\n");
    out->configs.push_back(std::move(cr));
    return;
  }
  cr.ok = true;
  cr.rows = result->answers.size();
  cr.fingerprint = AnswerFingerprint(result->answers);
  cr.agrees = cr.fingerprint == h->ref_fingerprint;
  if (!cr.agrees) {
    // Fingerprints are hashes; confirm with the canonical sets before
    // declaring a mismatch, and sample the difference for the report.
    std::vector<Tuple> canon = CanonicalAnswers(result->answers);
    if (canon == h->ref_canonical) {
      cr.agrees = true;  // fingerprint collision on the reference side
    } else {
      out->mismatch = true;
      StrAppend(&out->detail, config, ": ", cr.rows, " rows vs reference ",
                h->ref_canonical.size(), " rows\n");
      AppendDiffSample(canon, h->ref_canonical, "extra", 4, &out->detail);
      AppendDiffSample(h->ref_canonical, canon, "missing", 4, &out->detail);
      cr.detail = "answer set differs from reference";
    }
  }
  out->configs.push_back(std::move(cr));
}

Result<QueryResult> EvalDirect(const Program& program, Database* db,
                               const Literal& goal, RecursionMethod method,
                               size_t num_threads = 1) {
  QueryEvalOptions options;
  options.fixpoint.engine.num_threads = num_threads;
  return EvaluateQuery(program, db, goal, method, options);
}

/// LdlSystem::Query under the given options, shaped like a QueryResult.
Result<QueryResult> EvalOptimized(LdlSystem* sys, const Literal& goal,
                                  OptimizerOptions options) {
  sys->set_options(std::move(options));
  LDL_ASSIGN_OR_RETURN(QueryAnswer answer, sys->Query(goal));
  QueryResult result;
  result.answers = std::move(answer.answers);
  return result;
}

/// The §4 processing-tree interpreter path: build, annotate, execute.
Result<QueryResult> EvalTree(const Program& program, Database* db,
                             const Statistics& stats, const Literal& goal,
                             const OptimizerOptions& options) {
  Optimizer optimizer(program, stats, options);
  LDL_ASSIGN_OR_RETURN(QueryPlan plan, optimizer.Optimize(goal));
  if (!plan.safe) {
    return Status::Unsafe(
        StrCat("optimizer reports unsafe: ", plan.unsafe_reason));
  }
  LDL_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> tree,
                       BuildProcessingTree(program, goal));
  LDL_RETURN_NOT_OK(optimizer.AnnotateTree(tree.get()));
  TreeInterpreter interpreter(program, db);
  LDL_ASSIGN_OR_RETURN(Relation answers,
                       interpreter.Execute(*tree, tree->goal));
  QueryResult result;
  result.answers = std::move(answers);
  return result;
}

void RunMetamorphic(Harness* h, const DiffTestOptions& options,
                    DiffOutcome* out) {
  // (1) Monotonicity: adding EDB tuples never shrinks a positive query's
  // answer set. Negation breaks monotonicity, so such programs are exempt.
  if (!h->prog.HasNegation()) {
    std::vector<PredicateId> edb_preds;
    {
      std::set<PredicateId> seen;
      for (const Literal& f : h->prog.facts) {
        if (seen.insert(f.predicate()).second) {
          edb_preds.push_back(f.predicate());
        }
      }
    }
    if (!edb_preds.empty()) {
      // Deterministic growth: seeded by the program's own size, not by any
      // global state, so reruns of the same program repeat the check.
      Rng grow_rng(0xD1FFu * (h->prog.facts.size() + 1) +
                   h->prog.rules.size());
      GeneratedProgram grown = h->prog;
      for (int i = 0; i < 4; ++i) {
        const PredicateId& pred = edb_preds[grow_rng.Uniform(edb_preds.size())];
        std::vector<Term> args;
        for (size_t a = 0; a < pred.arity; ++a) {
          args.push_back(Term::MakeInt(
              static_cast<int64_t>(grow_rng.Uniform(options.gen.domain))));
        }
        grown.facts.push_back(Literal::Make(pred.name, std::move(args)));
      }
      Database grown_db;
      Status st = grown.BuildDatabase(&grown_db);
      auto grown_result =
          st.ok() ? EvalDirect(h->program, &grown_db, h->prog.query,
                               RecursionMethod::kSemiNaive)
                  : Result<QueryResult>(st);
      if (!grown_result.ok()) {
        out->metamorphic_violation = true;
        StrAppend(&out->detail, "meta:monotonic: grown EDB failed: ",
                  grown_result.status().ToString(), "\n");
      } else {
        std::vector<Tuple> grown_canon =
            CanonicalAnswers(grown_result->answers);
        if (!std::includes(grown_canon.begin(), grown_canon.end(),
                           h->ref_canonical.begin(),
                           h->ref_canonical.end())) {
          out->metamorphic_violation = true;
          StrAppend(&out->detail,
                    "meta:monotonic: adding EDB tuples lost answers\n");
          AppendDiffSample(h->ref_canonical, grown_canon, "lost", 4,
                          &out->detail);
        }
      }
    }
  }

  // (2) Bound/free consistency: a bound-argument query equals the free
  // query filtered to the constants (and vice versa for a bound instance
  // of a free query, which additionally drives magic on a constant).
  const Literal& q = h->prog.query;
  bool any_bound = false;
  for (const Term& a : q.args()) any_bound |= a.IsGround();
  if (any_bound) {
    std::vector<Term> free_args;
    for (size_t i = 0; i < q.arity(); ++i) {
      free_args.push_back(Term::MakeVariable(StrCat("Qf", i)));
    }
    Literal free_goal = q.WithArgs(std::move(free_args));
    auto free_result = EvalDirect(h->program, &h->db, free_goal,
                                  RecursionMethod::kSemiNaive);
    if (!free_result.ok()) {
      out->metamorphic_violation = true;
      StrAppend(&out->detail, "meta:bound-free: free query failed: ",
                free_result.status().ToString(), "\n");
    } else {
      Relation filtered = SelectMatching(&free_result->answers, q);
      std::vector<Tuple> filtered_canon = CanonicalAnswers(filtered);
      if (filtered_canon != h->ref_canonical) {
        out->metamorphic_violation = true;
        StrAppend(&out->detail,
                  "meta:bound-free: bound answers != filtered free answers\n");
        AppendDiffSample(h->ref_canonical, filtered_canon, "bound-only", 4,
                         &out->detail);
        AppendDiffSample(filtered_canon, h->ref_canonical, "free-only", 4,
                         &out->detail);
      }
    }
  } else if (!h->ref_canonical.empty()) {
    // Fully free query: instantiate the first argument with a witnessed
    // constant and check the bound evaluation (magic) agrees with the
    // filter of the free answers.
    std::vector<Term> args(q.args().begin(), q.args().end());
    args[0] = h->ref_canonical.front()[0];
    Literal bound_goal = q.WithArgs(std::move(args));
    auto bound_result = EvalDirect(h->program, &h->db, bound_goal,
                                   RecursionMethod::kMagic);
    if (!bound_result.ok()) {
      out->metamorphic_violation = true;
      StrAppend(&out->detail, "meta:free-bound: bound instance failed: ",
                bound_result.status().ToString(), "\n");
    } else {
      Relation all("answers", q.arity());
      for (const Tuple& t : h->ref_canonical) all.Insert(t);
      Relation filtered = SelectMatching(&all, bound_goal);
      if (CanonicalAnswers(filtered) !=
          CanonicalAnswers(bound_result->answers)) {
        out->metamorphic_violation = true;
        StrAppend(&out->detail, "meta:free-bound: bound instance ",
                  bound_goal.ToString(),
                  " disagrees with filtered free answers\n");
      }
    }
  }
}

}  // namespace

GeneratedProgram ApplyFault(const GeneratedProgram& prog, Fault fault) {
  if (fault == Fault::kNone) return prog;
  GeneratedProgram mutant = prog;
  for (Rule& rule : mutant.rules) {
    if (rule.body().size() < 2) continue;
    for (Literal& lit : *rule.mutable_body()) {
      if (!lit.IsBuiltin() && !lit.negated() && lit.arity() == 2) {
        lit = lit.WithArgs({lit.args()[1], lit.args()[0]});
        mutant.summary = StrCat(prog.summary, " FAULT:flip-join");
        return mutant;
      }
    }
  }
  return mutant;  // nothing flippable; caller sees identical program
}

std::vector<std::string> DiffOutcome::FailureSignatures() const {
  std::vector<std::string> sigs;
  for (const ConfigResult& cr : configs) {
    if (!cr.ok) {
      sigs.push_back(StrCat("err:", cr.config));
    } else if (!cr.agrees) {
      sigs.push_back(StrCat("neq:", cr.config));
    }
  }
  if (metamorphic_violation) sigs.push_back("meta");
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

DiffOutcome RunDifferential(const GeneratedProgram& prog,
                            const DiffTestOptions& options) {
  DiffOutcome out;
  Harness h(prog);

  auto program = prog.BuildProgram();
  if (!program.ok()) {
    out.reference_failed = true;
    out.detail = StrCat("program invalid: ", program.status().ToString());
    return out;
  }
  h.program = std::move(*program);
  Status st = prog.BuildDatabase(&h.db);
  if (!st.ok()) {
    out.reference_failed = true;
    out.detail = StrCat("EDB invalid: ", st.ToString());
    return out;
  }

  auto ref = EvalDirect(h.program, &h.db, prog.query,
                        RecursionMethod::kSemiNaive);
  if (!ref.ok()) {
    out.reference_failed = true;
    out.detail = StrCat("reference (seminaive) failed: ",
                        ref.status().ToString());
    return out;
  }
  h.ref_canonical = CanonicalAnswers(ref->answers);
  h.ref_fingerprint = AnswerFingerprint(ref->answers);
  {
    ConfigResult cr;
    cr.config = "eval:seminaive";
    cr.ok = true;
    cr.agrees = true;
    cr.rows = ref->answers.size();
    cr.fingerprint = h.ref_fingerprint;
    out.configs.push_back(std::move(cr));
  }

  // --- direct engine methods ----------------------------------------------
  if (options.run_naive) {
    RecordAnswers(&h, &out, "eval:naive",
                  EvalDirect(h.program, &h.db, prog.query,
                             RecursionMethod::kNaive));
  }
  if (options.run_magic) {
    RecordAnswers(&h, &out, "eval:magic",
                  EvalDirect(h.program, &h.db, prog.query,
                             RecursionMethod::kMagic));
  }
  if (options.run_counting) {
    RecordAnswers(&h, &out, "eval:counting",
                  EvalDirect(h.program, &h.db, prog.query,
                             RecursionMethod::kCounting));
  }

  // --- optimized path per join-order strategy ------------------------------
  if (!options.strategies.empty()) {
    LdlSystem sys;
    Status load = sys.LoadProgram(prog.ToLdl());
    if (!load.ok()) {
      // The printer/parser round trip failed on a program the direct path
      // evaluated — a defect in its own right, reported as a config error.
      ConfigResult cr;
      cr.config = "opt:load";
      cr.detail = load.ToString();
      out.config_error = true;
      StrAppend(&out.detail, "opt:load: round-trip parse failed: ",
                cr.detail, "\n");
      out.configs.push_back(std::move(cr));
    } else {
      for (SearchStrategy strategy : options.strategies) {
        OptimizerOptions o;
        o.strategy = strategy;
        RecordAnswers(&h, &out,
                      StrCat("opt:", SearchStrategyToString(strategy)),
                      EvalOptimized(&sys, prog.query, o));
      }
      // Canonical program (no projection pushdown) + plan verification on:
      // the optimizer must produce the same answers from the unrewritten
      // rule base, and every plan must pass the §4/§5 invariant checks.
      OptimizerOptions nopush;
      nopush.push_projections = false;
      nopush.verify_plans = true;
      RecordAnswers(&h, &out, "opt:exhaustive:nopush",
                    EvalOptimized(&sys, prog.query, nopush));
      // Semantic pre-optimization on: dead rules eliminated, statically
      // unreachable adornments pruned from the search. Must be invisible
      // in the answer set, and the resulting plans must still verify.
      if (options.run_analysis_pruned) {
        OptimizerOptions analyzed;
        analyzed.analyze_reachability = true;
        analyzed.eliminate_dead_rules = true;
        analyzed.verify_plans = true;
        RecordAnswers(&h, &out, "opt:analysis",
                      EvalOptimized(&sys, prog.query, analyzed));
      }
      // Feedback planning mode: warm the catalog with one observed pass,
      // then re-plan under the blended measured overlay. A different plan
      // is fine (often the point); different answers are a bug.
      if (options.run_feedback) {
        StatisticsCatalog catalog;
        DriftDetector detector;
        sys.set_feedback(&catalog, &detector);
        OptimizerOptions warm;
        (void)EvalOptimized(&sys, prog.query, warm);
        OptimizerOptions fed;
        fed.feedback = true;
        fed.verify_plans = true;
        RecordAnswers(&h, &out, "opt:feedback",
                      EvalOptimized(&sys, prog.query, fed));
        sys.set_feedback(nullptr, nullptr);
      }
    }
  }

  // --- parallel engine (par:N axis) ----------------------------------------
  // The concurrency-aware half of the oracle: the same method and strategy
  // matrix re-run with the hash-partitioned engine at each requested thread
  // count, pinned to the sequential reference fingerprint. Answer sets must
  // be bit-identical regardless of schedule; CI additionally runs this axis
  // under TSan so data races fail even when answers happen to agree.
  if (!options.thread_counts.empty()) {
    LdlSystem par_sys;
    Status par_load = par_sys.LoadProgram(prog.ToLdl());
    for (size_t threads : options.thread_counts) {
      RecordAnswers(&h, &out, StrCat("par:", threads, ":eval:seminaive"),
                    EvalDirect(h.program, &h.db, prog.query,
                               RecursionMethod::kSemiNaive, threads));
      if (options.run_naive) {
        RecordAnswers(&h, &out, StrCat("par:", threads, ":eval:naive"),
                      EvalDirect(h.program, &h.db, prog.query,
                                 RecursionMethod::kNaive, threads));
      }
      if (options.run_magic) {
        RecordAnswers(&h, &out, StrCat("par:", threads, ":eval:magic"),
                      EvalDirect(h.program, &h.db, prog.query,
                                 RecursionMethod::kMagic, threads));
      }
      if (options.run_counting) {
        RecordAnswers(&h, &out, StrCat("par:", threads, ":eval:counting"),
                      EvalDirect(h.program, &h.db, prog.query,
                                 RecursionMethod::kCounting, threads));
      }
      if (par_load.ok()) {
        for (SearchStrategy strategy : options.strategies) {
          OptimizerOptions o;
          o.strategy = strategy;
          o.engine.num_threads = threads;
          RecordAnswers(&h, &out,
                        StrCat("par:", threads, ":opt:",
                               SearchStrategyToString(strategy)),
                        EvalOptimized(&par_sys, prog.query, o));
        }
      }
    }
  }

  // --- processing-tree interpreter (MP axis) -------------------------------
  if (options.run_tree_interpreter) {
    Statistics stats = Statistics::Collect(h.db);
    for (bool materialize : {true, false}) {
      OptimizerOptions o;
      o.consider_materialization = materialize;
      RecordAnswers(&h, &out,
                    materialize ? "tree:materialize" : "tree:pipeline",
                    EvalTree(h.program, &h.db, stats, prog.query, o));
    }
  }

  // --- injected fault (harness self-test) ----------------------------------
  if (options.fault != Fault::kNone) {
    GeneratedProgram mutant = ApplyFault(prog, options.fault);
    auto mutant_program = mutant.BuildProgram();
    if (mutant_program.ok()) {
      RecordAnswers(&h, &out, "fault:flip-join",
                    EvalDirect(*mutant_program, &h.db, mutant.query,
                               RecursionMethod::kSemiNaive));
    }
  }

  // --- metamorphic checks ---------------------------------------------------
  if (options.run_metamorphic) {
    RunMetamorphic(&h, options, &out);
  }
  return out;
}

namespace {

GeneratedProgram WithoutRule(const GeneratedProgram& prog, size_t index) {
  GeneratedProgram out = prog;
  out.rules.erase(out.rules.begin() + static_cast<ptrdiff_t>(index));
  return out;
}

GeneratedProgram WithoutFacts(const GeneratedProgram& prog, size_t start,
                              size_t count) {
  GeneratedProgram out = prog;
  auto first = out.facts.begin() + static_cast<ptrdiff_t>(start);
  auto last = first + static_cast<ptrdiff_t>(
                          std::min(count, out.facts.size() - start));
  out.facts.erase(first, last);
  return out;
}

GeneratedProgram WithoutLiteral(const GeneratedProgram& prog, size_t rule,
                                size_t literal) {
  GeneratedProgram out = prog;
  std::vector<Literal>* body = out.rules[rule].mutable_body();
  body->erase(body->begin() + static_cast<ptrdiff_t>(literal));
  return out;
}

}  // namespace

GeneratedProgram ShrinkFailure(
    const GeneratedProgram& failing,
    const std::function<bool(const GeneratedProgram&)>& still_fails,
    size_t max_evaluations, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* s = stats != nullptr ? stats : &local;
  *s = ShrinkStats{};
  GeneratedProgram current = failing;

  auto budget_left = [&]() { return s->evaluations < max_evaluations; };
  auto check = [&](const GeneratedProgram& candidate) {
    if (!budget_left()) return false;
    ++s->evaluations;
    return still_fails(candidate);
  };

  // Phase 1: whole rules, greedily to fixpoint. (Removing a rule the query
  // depends on makes the program invalid or empties the reference — the
  // predicate rejects those candidates.)
  bool changed = true;
  while (changed && budget_left()) {
    changed = false;
    for (size_t i = 0; i < current.rules.size(); ++i) {
      GeneratedProgram candidate = WithoutRule(current, i);
      if (check(candidate)) {
        current = std::move(candidate);
        ++s->rules_removed;
        changed = true;
        break;
      }
    }
  }

  // Phase 2: EDB facts, ddmin-style — remove chunks, halving the chunk size
  // whenever a full sweep removes nothing.
  for (size_t chunk = std::max<size_t>(1, current.facts.size() / 2);
       chunk >= 1 && budget_left();) {
    bool removed_any = false;
    size_t start = 0;
    while (start < current.facts.size() && budget_left()) {
      GeneratedProgram candidate = WithoutFacts(current, start, chunk);
      if (check(candidate)) {
        s->facts_removed +=
            current.facts.size() - candidate.facts.size();
        current = std::move(candidate);
        removed_any = true;
        // Same start: the next chunk slid into this position.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any) chunk /= 2;
  }

  // Phase 3: individual body literals, then one more rule pass (dropping a
  // literal often makes a whole rule droppable).
  changed = true;
  while (changed && budget_left()) {
    changed = false;
    for (size_t r = 0; r < current.rules.size() && !changed; ++r) {
      for (size_t l = 0; l < current.rules[r].body().size(); ++l) {
        GeneratedProgram candidate = WithoutLiteral(current, r, l);
        if (check(candidate)) {
          current = std::move(candidate);
          ++s->literals_removed;
          changed = true;
          break;
        }
      }
    }
    if (!changed) {
      for (size_t i = 0; i < current.rules.size(); ++i) {
        GeneratedProgram candidate = WithoutRule(current, i);
        if (check(candidate)) {
          current = std::move(candidate);
          ++s->rules_removed;
          changed = true;
          break;
        }
      }
    }
  }
  return current;
}

std::string WriteRepro(const std::string& dir, uint64_t seed, size_t iter,
                       const GeneratedProgram& prog,
                       const std::string& detail) {
  const std::string base = dir.empty() ? std::string(".") : dir;
  std::error_code ec;
  std::filesystem::create_directories(base, ec);  // best effort; open decides
  std::string path = StrCat(base, "/repro-seed", seed, "-i", iter, ".ldl");
  std::ofstream out(path);
  if (!out) return "";
  out << "% ldl_difftest repro (seed " << seed << ", iteration " << iter
      << ")\n";
  size_t pos = 0;
  while (pos < detail.size()) {
    size_t eol = detail.find('\n', pos);
    if (eol == std::string::npos) eol = detail.size();
    out << "% " << detail.substr(pos, eol - pos) << "\n";
    pos = eol + 1;
  }
  out << prog.ToLdl();
  return out.good() ? path : "";
}

}  // namespace testing
}  // namespace ldl
