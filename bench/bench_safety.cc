// Experiment E8 — section 8: safety folded into optimization.
//
//   "In practice, this can be done by simply assigning an extremely high
//    cost to unsafe goals and then let the standard optimization algorithm
//    do the pruning. If the cost of the end-solution produced by the
//    optimizer is not less than this extreme value, a proper message must
//    inform the user that the query is unsafe."
//
// Table 1: how many permutations of each rule body are EC-safe, and whether
//          the optimizer finds one (vs the Prolog textual order).
// Table 2: queries with no safe execution at all — including the paper's
//          section 8.3 counterexample — are rejected with diagnostics.
// Table 3: cost of the safety analysis itself (compile-time, not run-time).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "ast/parser.h"
#include "bench_util.h"
#include "ldl/ldl.h"
#include "safety/safety.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

size_t CountSafePermutations(const Rule& rule, const Adornment& adn,
                             size_t* total) {
  std::vector<size_t> order(rule.body().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t safe = 0;
  *total = 0;
  do {
    ++*total;
    if (CheckRuleEc(rule, order, adn).ok()) ++safe;
  } while (std::next_permutation(order.begin(), order.end()));
  return safe;
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E8", "safety via infinite cost (section 8.2): safe "
                      "permutations per rule and the optimizer's pick");
  {
    struct Case {
      const char* rule;
      const char* query;
    };
    const Case cases[] = {
        {"q(Y) <- Y = X + 1, r(X).", "q(Y)"},
        {"q(Z) <- Z = X + Y, r(X), s(Y).", "q(Z)"},
        {"q(X) <- X > T, r(X), s(T).", "q(X)"},
        {"q(X, W) <- r(X), not s(X, W), t(W).", "q(X, W)"},
        {"q(Y) <- r(X), Y = X * X, Y < 100, s(Y).", "q(Y)"},
    };
    Table table({"rule", "safe perms", "total", "textual safe?",
                 "optimizer finds safe plan?"});
    for (const Case& c : cases) {
      auto program = ParseProgram(c.rule);
      if (!program.ok()) continue;
      const Rule& rule = program->rules()[0];
      auto goal = ParseLiteral(c.query);
      Adornment adn = Adornment::FromGoal(*goal);
      size_t total = 0;
      size_t safe = CountSafePermutations(rule, adn, &total);
      std::vector<size_t> textual(rule.body().size());
      for (size_t i = 0; i < textual.size(); ++i) textual[i] = i;
      bool textual_safe = CheckRuleEc(rule, textual, adn).ok();

      // Unknown base relations fall back to default statistics; the safety
      // outcome only depends on bindings.
      LdlSystem sys;
      (void)sys.LoadProgram(c.rule);
      auto plan = sys.Plan(c.query);
      bool found = plan.ok() && plan->safe;
      table.AddRow({c.rule, std::to_string(safe), std::to_string(total),
                    textual_safe ? "yes" : "NO",
                    found ? "yes" : "NO"});
    }
    table.Print();
    std::printf("Expected shape: the optimizer finds a safe order whenever\n"
                "one exists, even when Prolog's textual order is unsafe.\n\n");
  }

  bench::Banner("E8b", "genuinely unsafe queries are rejected at compile "
                       "time with diagnostics");
  {
    struct Case {
      const char* name;
      const char* program;
      const char* query;
    };
    const Case cases[] = {
        {"open comparison", "bigger(X, Y) <- X > Y.", "bigger(X, 3)"},
        {"arithmetic recursion",
         "nat(X) <- zero(X). nat(Y) <- nat(X), Y = X + 1.", "nat(N)"},
        {"term-growing recursion (free)",
         "member(X, [X | T]). member(X, [H | T]) <- member(X, T).",
         "member(1, L)"},
        {"paper section 8.3", "p(X, Y, Z) <- X = 3, Z = X + Y.",
         "p(X, Y, Z)"},
    };
    Table table({"case", "rejected?", "diagnostic (truncated)"});
    for (const Case& c : cases) {
      LdlSystem sys;
      (void)sys.LoadProgram(c.program);
      auto answer = sys.Query(c.query);
      bool rejected =
          !answer.ok() && answer.status().code() == StatusCode::kUnsafe;
      std::string msg = rejected ? answer.status().message() : "NOT REJECTED";
      if (msg.size() > 56) msg = msg.substr(0, 56) + "...";
      table.AddRow({c.name, rejected ? "yes" : "NO", msg});
    }
    table.Print();
    std::printf(
        "The section 8.3 example is finite but no permutation computes it;\n"
        "only flattening (FU) would rescue it — exactly the limitation the\n"
        "paper accepts for its first version (see plan/transform.h).\n\n");
  }

  bench::Banner("E8c", "bound query forms rescue safety (query-specific "
                       "compilation, section 2)");
  {
    Table table({"query form", "safe?"});
    LdlSystem sys;
    (void)sys.LoadProgram("half(X, Y) <- Y = X / 2.");
    for (const char* q : {"half(X, Y)", "half(10, Y)", "half(X, 5)"}) {
      auto plan = sys.Plan(q);
      table.AddRow({q, plan.ok() && plan->safe ? "yes" : "NO"});
    }
    table.Print();
  }
}

namespace {

void BM_SafetyAnalysis(benchmark::State& state) {
  auto program = ParseProgram(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
    q(Y) <- sg(1, X), Y = X + 1, X > 0.
  )");
  auto goal = ParseLiteral("q(Y)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeQuerySafety(*program, *goal));
  }
}
BENCHMARK(BM_SafetyAnalysis);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("safety");
  return 0;
}
