// Tests for the structured query log (src/obs/query_log.h): the flat JSONL
// schema (golden file pins key set, order, and number formatting), the
// ToJson -> FromJson round trip, forward compatibility with unknown keys,
// file append/read, and the records LdlSystem::Query writes end to end.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ldl/ldl.h"
#include "obs/query_log.h"

namespace ldl {
namespace {

QueryLogRecord SampleRecord() {
  QueryLogRecord rec;
  rec.program = "examples/tc with \"quotes\"\nand newline.ldl";
  rec.query = "tc(a, Y)";
  rec.adornment = "bf";
  rec.method = "magic";
  rec.plan_fingerprint = "0123456789abcdef";
  rec.stats_epoch = 3;
  rec.prune = true;
  rec.outcome = "ok";
  rec.error = "";
  rec.answer_fingerprint = "7:fedcba9876543210";
  rec.answers = 7;
  rec.budget_bytes = 1 << 20;
  rec.deadline_ms = 12.5;
  rec.peak_bytes = 65536;
  rec.tuples_examined = 4242;
  rec.tuples_derived = 99;
  rec.fixpoint_rounds = 6;
  rec.rule_firings = 18;
  rec.cancel_checks = 5;
  rec.optimize_ms = 0.375;
  rec.execute_ms = 2.25;
  rec.total_ms = 2.625;
  return rec;
}

TEST(QueryLogRecordTest, RoundTripIsIdentity) {
  const QueryLogRecord rec = SampleRecord();
  const std::string json = rec.ToJson();
  auto back = QueryLogRecord::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, rec);
  EXPECT_EQ(back->ToJson(), json) << "serialization is not a fixed point";
}

TEST(QueryLogRecordTest, RoundTripsAwkwardDoubles) {
  QueryLogRecord rec = SampleRecord();
  rec.total_ms = 0.1 + 0.2;  // 0.30000000000000004: needs %.17g
  rec.execute_ms = 1e-9;
  rec.optimize_ms = 12345678.875;
  auto back = QueryLogRecord::FromJson(rec.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total_ms, rec.total_ms);
  EXPECT_EQ(back->execute_ms, rec.execute_ms);
  EXPECT_EQ(back->optimize_ms, rec.optimize_ms);
}

TEST(QueryLogRecordTest, UnknownKeysAreIgnored) {
  const QueryLogRecord rec = SampleRecord();
  std::string json = rec.ToJson();
  // A future writer added a string field (with tricky content) and a
  // numeric field; this reader must skip both.
  json.insert(1, "\"future_note\":\"has , and } and \\\" inside\",");
  json.insert(json.size() - 1, ",\"future_count\":42");
  auto back = QueryLogRecord::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, rec);
}

TEST(QueryLogRecordTest, MalformedLinesAreRejected) {
  EXPECT_FALSE(QueryLogRecord::FromJson("").ok());
  EXPECT_FALSE(QueryLogRecord::FromJson("not json").ok());
  EXPECT_FALSE(QueryLogRecord::FromJson("{\"query\":").ok());
  EXPECT_FALSE(QueryLogRecord::FromJson("{\"query\":\"unterminated").ok());
  EXPECT_FALSE(QueryLogRecord::FromJson("{\"a\":1} trailing").ok());
  EXPECT_TRUE(QueryLogRecord::FromJson("{}").ok());  // all defaults
}

TEST(QueryLogRecordTest, GoldenFilePinsTheSchema) {
  const std::string path =
      std::string(LDLOPT_SOURCE_DIR) + "/tests/golden/query_log.golden.jsonl";
  auto records = QueryLog::ReadFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);

  // Re-serialization reproduces the committed bytes exactly: key set, key
  // order, and number formatting are all part of the schema contract.
  // Changing ToJson requires regenerating this golden deliberately.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t i = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_LT(i, records->size());
    EXPECT_EQ((*records)[i].ToJson(), line) << "golden line " << (i + 1);
    ++i;
  }
  EXPECT_EQ(i, records->size());

  const QueryLogRecord& ok = (*records)[0];
  EXPECT_EQ(ok.query, "anc(john, X)");
  EXPECT_EQ(ok.adornment, "bf");
  EXPECT_EQ(ok.method, "magic");
  EXPECT_EQ(ok.outcome, "ok");
  EXPECT_EQ(ok.answers, 4u);
  EXPECT_EQ(ok.total_ms, 1.75);

  const QueryLogRecord& failed = (*records)[1];
  EXPECT_EQ(failed.outcome, "resource_exhausted");
  EXPECT_TRUE(failed.prune);
  EXPECT_EQ(failed.program, "examples/deep \"tc\".ldl");
  EXPECT_EQ(failed.peak_bytes, 2097152u);
}

TEST(QueryLogTest, StampsDefaultProgram) {
  QueryLog log;
  log.set_default_program("examples/a.ldl");
  QueryLogRecord rec;
  rec.query = "p(X)";
  log.Append(rec);
  QueryLogRecord explicit_rec;
  explicit_rec.program = "examples/b.ldl";
  explicit_rec.query = "q(X)";
  log.Append(explicit_rec);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.snapshot()[0].program, "examples/a.ldl");
  EXPECT_EQ(log.snapshot()[1].program, "examples/b.ldl");
}

TEST(QueryLogTest, AppendWritesReadFileReads) {
  const std::string path =
      ::testing::TempDir() + "/ldl_query_log_test.jsonl";
  std::remove(path.c_str());
  {
    QueryLog log;
    ASSERT_TRUE(log.Open(path).ok());
    QueryLogRecord rec = SampleRecord();
    log.Append(rec);
    rec.query = "tc(b, Y)";
    rec.outcome = "unsafe";
    rec.error = "free variable in head";
    log.Append(rec);
    ASSERT_EQ(log.size(), 2u);
  }
  auto records = QueryLog::ReadFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], SampleRecord());
  EXPECT_EQ((*records)[1].query, "tc(b, Y)");
  EXPECT_EQ((*records)[1].outcome, "unsafe");
  std::remove(path.c_str());
}

// --- end to end through LdlSystem ---

constexpr char kProgram[] = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
  par(bart, homer). par(lisa, homer). par(homer, abe). par(abe, orville).
)";

TEST(QueryLogIntegrationTest, QueryAppendsCompleteRecord) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kProgram).ok());
  QueryLog log;
  log.set_default_program("inline-test");
  sys.set_query_log(&log);

  auto answer = sys.Query("anc(bart, Y)");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(log.size(), 1u);
  const QueryLogRecord rec = log.snapshot()[0];
  EXPECT_EQ(rec.program, "inline-test");
  EXPECT_EQ(rec.query, "anc(bart, Y)");
  EXPECT_EQ(rec.adornment, "bf");
  EXPECT_FALSE(rec.method.empty());
  EXPECT_EQ(rec.plan_fingerprint.size(), 16u);
  EXPECT_EQ(rec.plan_fingerprint, answer->plan.Fingerprint());
  EXPECT_GE(rec.stats_epoch, 1u);
  EXPECT_EQ(rec.outcome, "ok");
  EXPECT_EQ(rec.answers, answer->answers.size());
  EXPECT_FALSE(rec.answer_fingerprint.empty());
  EXPECT_GT(rec.peak_bytes, 0u);
  EXPECT_GT(rec.tuples_examined, 0u);
  EXPECT_GT(rec.cancel_checks, 0u);
  EXPECT_GE(rec.total_ms, 0.0);
  // The record itself round-trips.
  auto back = QueryLogRecord::FromJson(rec.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rec);
}

TEST(QueryLogIntegrationTest, FailedQueriesAreLoggedWithTypedOutcome) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kProgram).ok());
  QueryLog log;
  sys.set_query_log(&log);

  // Unknown predicate: typed failure, still logged.
  auto missing = sys.Query("nothing(X)");
  ASSERT_FALSE(missing.ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.snapshot()[0].outcome, "not_found");
  EXPECT_FALSE(log.snapshot()[0].error.empty());

  // Over-budget recursion: resource_exhausted, still logged.
  OptimizerOptions options;
  options.limits.budget_tuples = 1;
  sys.set_options(options);
  auto exhausted = sys.Query("anc(X, Y)");
  ASSERT_FALSE(exhausted.ok());
  ASSERT_EQ(log.size(), 2u);
  const QueryLogRecord rec = log.snapshot()[1];
  EXPECT_EQ(rec.outcome, "resource_exhausted");
  EXPECT_EQ(rec.budget_bytes, 0u);
  EXPECT_GT(rec.tuples_examined, 0u);
}

TEST(QueryLogIntegrationTest, StatisticsEpochAdvancesOnRefresh) {
  LdlSystem sys;
  ASSERT_TRUE(sys.LoadProgram(kProgram).ok());
  QueryLog log;
  sys.set_query_log(&log);
  ASSERT_TRUE(sys.Query("anc(bart, Y)").ok());
  sys.RefreshStatistics();
  ASSERT_TRUE(sys.Query("anc(bart, Y)").ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GT(log.snapshot()[1].stats_epoch, log.snapshot()[0].stats_epoch);
}

}  // namespace
}  // namespace ldl
