#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "base/strings.h"

namespace ldl {

namespace {

/// CAS add for atomic<double> (fetch_add on floating atomics is C++20;
/// this is the portable spelling and compiles to the same loop).
void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

bool IsCanonicalMetricChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':' || c == '.') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

}  // namespace

bool IsCanonicalMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (!IsCanonicalMetricChar(name[i], i == 0)) return false;
  }
  return true;
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (char c : name) {
    out.push_back(IsCanonicalMetricChar(c, /*first=*/false) ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

void Histogram::Record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  AtomicMinDouble(&min_, v);
  AtomicMaxDouble(&max_, v);
  size_t b = 0;
  if (v >= 1) {
    b = static_cast<size_t>(std::log2(v)) + 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  const double lo_seen = min_.load(std::memory_order_relaxed);
  const double hi_seen = max_.load(std::memory_order_relaxed);
  if (p <= 0) return lo_seen;
  if (p >= 1) return hi_seen;
  const double target = p * static_cast<double>(n);
  double cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double next = cum + static_cast<double>(in_bucket);
    if (target <= next) {
      // Bucket 0 holds [0, 1); bucket b >= 1 holds [2^(b-1), 2^b).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      const double frac = (target - cum) / static_cast<double>(in_bucket);
      const double v = lo + frac * (hi - lo);
      return std::min(std::max(v, lo_seen), hi_seen);
    }
    cum = next;
  }
  return hi_seen;
}

namespace {

/// Hot-path friendly sanitation: canonical names (the overwhelmingly common
/// case — every in-tree site) pass through without allocating; anything
/// else is rewritten into `storage` and viewed from there.
std::string_view CanonicalName(std::string_view name, std::string* storage) {
  if (IsCanonicalMetricName(name)) return name;
  *storage = SanitizeMetricName(name);
  return *storage;
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::string sanitized;
  name = CanonicalName(name, &sanitized);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

namespace {

/// JSON number formatting: finite doubles only (JSON has no inf/nan).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << JsonNumber(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << JsonNumber(h->sum())
       << ",\"min\":" << JsonNumber(h->min())
       << ",\"max\":" << JsonNumber(h->max())
       << ",\"p50\":" << JsonNumber(h->percentile(0.50))
       << ",\"p95\":" << JsonNumber(h->percentile(0.95))
       << ",\"p99\":" << JsonNumber(h->percentile(0.99)) << "}";
  }
  os << "}}\n";
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " = {count=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " max=" << h->max()
       << " mean=" << h->mean() << " p50=" << h->percentile(0.50)
       << " p95=" << h->percentile(0.95) << " p99=" << h->percentile(0.99)
       << "}\n";
  }
  return os.str();
}

}  // namespace ldl
