#include "engine/magic.h"

#include <sstream>

#include "base/strings.h"

namespace ldl {

std::string MagicProgram::ToString() const {
  std::ostringstream os;
  os << "% magic rewrite; seed " << seed.ToString() << ", answers in "
     << answer_pred.ToString() << "\n";
  os << rewritten.ToString();
  return os.str();
}

PredicateId MagicPredicateId(const AdornedPredicate& ap) {
  return {StrCat("magic.", ap.pred.name, ".", ap.adornment.ToString()),
          ap.adornment.BoundCount()};
}

namespace {

/// The magic literal for goal `goal` adorned with `adn`: the goal's
/// argument terms at the bound positions.
Literal MagicLiteral(const PredicateId& original, const Adornment& adn,
                     const std::vector<Term>& goal_args) {
  std::vector<Term> args;
  args.reserve(adn.BoundCount());
  for (size_t i = 0; i < adn.size(); ++i) {
    if (adn.IsBound(i)) args.push_back(goal_args[i]);
  }
  return Literal::Make(MagicPredicateId({original, adn}).name,
                       std::move(args));
}

}  // namespace

Result<MagicProgram> MagicRewrite(const AdornedProgram& adorned) {
  MagicProgram out;
  out.answer_pred = adorned.query.RenamedId();
  out.answer_goal =
      adorned.query_goal.WithPredicateName(out.answer_pred.name);

  // Seed: magic.q.a(query constants).
  out.seed = MagicLiteral(adorned.query.pred, adorned.query.adornment,
                          adorned.query_goal.args());
  for (const Term& t : out.seed.args()) {
    if (!t.IsGround()) {
      return Status::Internal(
          StrCat("magic seed has non-ground argument: ", t.ToString()));
    }
  }

  for (const AdornedRule& ar : adorned.rules) {
    const Literal& head = ar.renamed.head();
    Literal guard =
        MagicLiteral(ar.head_original, ar.head_adornment, head.args());

    // Guarded rule: p.a(t) <- magic.p.a(t_b), body. A 0-ary magic guard
    // acts as the demand flag for all-free subqueries.
    std::vector<Literal> guarded_body;
    guarded_body.reserve(ar.renamed.body().size() + 1);
    guarded_body.push_back(guard);
    for (const Literal& lit : ar.renamed.body()) guarded_body.push_back(lit);
    out.rewritten.AddRule(Rule(head, std::move(guarded_body)));

    // Magic rules: one per derived body literal. Negated occurrences carry
    // the all-free adornment (their magic literal is a 0-ary demand flag:
    // "compute this predicate in full before testing absence").
    for (size_t j = 0; j < ar.renamed.body().size(); ++j) {
      if (!ar.body_derived[j].has_value()) continue;
      const Literal& body_lit = ar.renamed.body()[j];
      Literal magic_head = MagicLiteral(*ar.body_derived[j],
                                        ar.body_adornments[j],
                                        body_lit.args());
      std::vector<Literal> magic_body;
      magic_body.reserve(j + 1);
      magic_body.push_back(guard);
      for (size_t k = 0; k < j; ++k) {
        magic_body.push_back(ar.renamed.body()[k]);
      }
      out.rewritten.AddRule(Rule(std::move(magic_head),
                                 std::move(magic_body)));
    }
  }

  return out;
}

}  // namespace ldl
