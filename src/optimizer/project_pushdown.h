#ifndef LDLOPT_OPTIMIZER_PROJECT_PUSHDOWN_H_
#define LDLOPT_OPTIMIZER_PROJECT_PUSHDOWN_H_

#include <map>
#include <string>
#include <vector>

#include "ast/program.h"
#include "base/status.h"

namespace ldl {

/// Result of the projection-pushing rewrite.
struct ProjectedProgram {
  Program rewritten;
  /// The goal re-targeted at the rewritten program (the query predicate
  /// itself keeps all argument positions).
  Literal goal;
  /// For each reduced derived predicate: which original argument positions
  /// were kept (renamed to "<name>.pp", arity = kept.size()).
  std::map<PredicateId, std::vector<size_t>> kept_positions;
  /// Total argument positions eliminated across the program.
  size_t positions_dropped = 0;

  std::string ToString() const;
};

/// The projection-pushing pre-processing pass of [RBK 87], which the paper
/// (section 7.3) applies before the optimizer because "recursive techniques
/// such as Magic Sets and Counting can only handle pushing selections".
///
/// Computes, by fixpoint over the rule graph, which argument positions of
/// each derived predicate are *needed* — a position is needed in some
/// occurrence if its term is non-variable, or its variable also appears in
/// a needed head position, in another body literal (join variable), in a
/// builtin or negated literal, or more than once in the same literal. All
/// other positions carry values no consumer ever looks at; they are dropped
/// by rewriting the predicate to "<name>.pp" with only the kept positions
/// (the PP transformation applied program-wide).
///
/// The rewrite preserves the query's answers exactly: the query predicate
/// keeps every position, and dropped positions are provably dead.
Result<ProjectedProgram> PushProjections(const Program& program,
                                         const Literal& goal);

}  // namespace ldl

#endif  // LDLOPT_OPTIMIZER_PROJECT_PUSHDOWN_H_
