#ifndef LDLOPT_PLAN_EXPLAIN_H_
#define LDLOPT_PLAN_EXPLAIN_H_

#include <string>

#include "obs/context.h"
#include "obs/search_trace.h"
#include "plan/processing_tree.h"

namespace ldl {

/// EXPLAIN / EXPLAIN ANALYZE rendering of an annotated processing tree.
///
/// Without a profile the output is the estimate-only EXPLAIN view: one row
/// per node showing the tree structure (AND/OR/CC/SCAN/BUILTIN, [mat]/[pipe]
/// marks, method labels, adornments) with the optimizer's cost and
/// cardinality estimates in aligned columns.
///
/// With a profile (an ExecutionProfile filled by TreeInterpreter over the
/// same tree) it becomes EXPLAIN ANALYZE: estimated cost/rows side by side
/// with measured rows, tuples examined, wall time, executions and memo hits
/// per node. Nodes the execution never reached (e.g. builtins evaluated
/// inline by their AND parent) show "-" in the measured columns.
std::string RenderExplain(const PlanNode& tree,
                          const ExecutionProfile* profile = nullptr);

/// EXPLAIN OPTIMIZE rendering of a recorded search: a disposition summary,
/// the candidate log grouped under its search scopes (indented by scope
/// nesting, each candidate with disposition, estimated cost, proposed order
/// and detail), and the final (predicate, adornment) -> Subplan memo
/// lattice with the winning entries marked. `max_candidate_lines` bounds
/// the candidate log for terminal use; the tail is summarized, never
/// silently dropped.
std::string RenderExplainOptimize(const SearchTracer& tracer,
                                  size_t max_candidate_lines = 200);

}  // namespace ldl

#endif  // LDLOPT_PLAN_EXPLAIN_H_
