#ifndef LDLOPT_ENGINE_RULE_EVAL_H_
#define LDLOPT_ENGINE_RULE_EVAL_H_

#include <functional>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "base/status.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "storage/database.h"
#include "storage/sharded.h"

namespace ldl {

/// Work counters accumulated by the evaluator. `tuples_examined` is the
/// machine-independent work measure the recursion benchmarks report
/// alongside wall-clock time.
struct EvalCounters {
  size_t tuples_examined = 0;  ///< tuples touched during joins/lookups
  size_t derivations = 0;      ///< head tuples produced (before dedup)
  size_t inserts = 0;          ///< head tuples that were new
  size_t rule_firings = 0;     ///< rule evaluations started

  void Add(const EvalCounters& other);
  std::string ToString() const;

  /// Adds the counters into the registry under the engine.* names
  /// (engine.tuples_examined, engine.derivations, engine.inserts,
  /// engine.rule_firings). No-op on nullptr.
  void ExportTo(MetricsRegistry* metrics) const;
};

/// Maps a body literal occurrence to the relation to read. Lets semi-naive
/// evaluation substitute delta relations for specific occurrences, and the
/// magic rewrite look up freshly created predicates. Returning nullptr means
/// "empty relation".
using RelationResolver =
    std::function<Relation*(const Literal& lit, size_t body_pos)>;

/// A binding-aware resolver: receives the literal's argument patterns under
/// the current substitution (ground where bound). Lets a caller implement
/// *pipelined* evaluation of derived literals — computing, per binding
/// instance, just the matching fragment of the subquery (with tabling on
/// the caller's side). Returning nullptr falls back to the plain resolver.
using PatternResolver = std::function<Relation*(
    const Literal& lit, size_t body_pos, const std::vector<Term>& patterns)>;

struct RuleEvalOptions {
  /// Order in which to visit body literals; empty = textual order.
  std::vector<size_t> order;
  /// Guard against runaway evaluation (unsafe programs).
  size_t max_derivations = 200'000'000;
  /// Optional binding-aware resolution, tried before the plain resolver.
  PatternResolver pattern_resolver;
  /// Cooperative cancellation: checked every
  /// CancellationToken::kCheckIntervalTuples examined tuples, bounding
  /// abort latency inside even a single monster rule evaluation.
  CancellationToken* cancel = nullptr;
  /// Per-query work meter; examined/derived tuples are flushed into it at
  /// check-points (not per tuple) to keep the hot loop cheap.
  ResourceAccountant* accountant = nullptr;
  /// Parallel-round mode: every relation the resolver returns is frozen for
  /// the duration of the call (no other thread mutates it, and this
  /// evaluation writes only to its private sink). The evaluator then uses
  /// the const index path (Relation::FindPostings, falling back to a scan
  /// when no index was pre-built) and iterates tuples by reference instead
  /// of copying them — lazily building indexes or assuming self-insertion
  /// would be a data race / wasted work respectively.
  bool concurrent_reads = false;
};

/// Evaluates one rule bottom-up: enumerates all substitutions satisfying
/// the body (visiting literals in `options.order`), and for each one emits
/// the instantiated head tuple into `out`.
///
/// Positive literals are matched via hash-index lookups on their bound
/// argument positions. Builtins are computed inline; a kNotComputable
/// builtin aborts with kUnsafe (the optimizer is responsible for choosing
/// orders where this cannot happen). Negated literals require all their
/// variables bound and test for absence.
///
/// Returns the number of *new* tuples added to `out`.
Result<size_t> EvaluateRule(const Rule& rule, const RelationResolver& resolve,
                            Relation* out, EvalCounters* counters,
                            const RuleEvalOptions& options = {});

/// Batch-sink overload: emits head tuples into a thread-local TupleBatch
/// instead of a Relation. This is the worker-task entry point of the
/// parallel engine — combined with `options.concurrent_reads` it performs
/// no writes to any shared structure.
Result<size_t> EvaluateRule(const Rule& rule, const RelationResolver& resolve,
                            TupleBatch* out, EvalCounters* counters,
                            const RuleEvalOptions& options = {});

/// Convenience resolver reading every literal from `db` (creating empty
/// relations for unknown predicates on the fly is avoided: unknown ->
/// nullptr -> empty).
RelationResolver DatabaseResolver(Database* db);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_RULE_EVAL_H_
