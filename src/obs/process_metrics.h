#ifndef LDLOPT_OBS_PROCESS_METRICS_H_
#define LDLOPT_OBS_PROCESS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ldl {

/// Compile/configure-time facts about this binary. Rendered as the
/// `ldlopt_build_info` labeled gauge in the Prometheus exposition and as
/// the "build" object in /statusz.
struct BuildInfo {
  std::string compiler;    ///< e.g. "gcc 13.2.0" (__VERSION__)
  std::string standard;    ///< e.g. "c++202002" (__cplusplus)
  std::string build_type;  ///< CMAKE_BUILD_TYPE at configure time
  std::string git;         ///< `git describe --always --dirty`, or "unknown"
  std::string sanitizer;   ///< LDLOPT_SANITIZE value, or ""
};

/// The BuildInfo for the running binary (values baked in at build time).
const BuildInfo& CurrentBuildInfo();

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). 0 when the platform does not expose it.
uint64_t ReadPeakRssBytes();

/// Process-level built-in gauges, refreshed on demand (before a scrape or a
/// metrics dump) rather than continuously:
///
///   process.uptime_seconds   wall seconds since this source was created
///                            (process start, for the tools that create it
///                            in main)
///   process.peak_rss_bytes   peak resident set size
///   process.start_unix_seconds
///                            wall-clock anchor for the uptime series
///
/// The gauges live in the supplied registry, so every exposition surface
/// (/metrics, /statusz, --metrics-json) sees the same values.
class ProcessMetricsSource {
 public:
  explicit ProcessMetricsSource(MetricsRegistry* registry);

  /// Re-reads uptime and peak RSS into the registry gauges.
  void Refresh();

  double uptime_seconds() const;
  const BuildInfo& build_info() const { return CurrentBuildInfo(); }

 private:
  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ldl

#endif  // LDLOPT_OBS_PROCESS_METRICS_H_
