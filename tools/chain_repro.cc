#include <cstdio>

#include "ast/parser.h"
#include "engine/query_eval.h"
#include "storage/database.h"

using namespace ldl;

int main() {
  auto p = ParseProgram(
      "tc(X, Y) <- edge(X, Y).\n"
      "tc(X, Y) <- edge(X, Z), tc(Z, Y).\n");
  if (!p.ok()) { std::printf("parse fail\n"); return 2; }
  const int kN = 40;
  Database db;
  Relation* edge = db.GetOrCreate(PredicateId{"edge", 2});
  for (int i = 0; i < kN; ++i)
    edge->Insert({Term::MakeInt(i), Term::MakeInt(i + 1)});
  auto goal = ParseLiteral("tc(0, Y)");
  if (!goal.ok()) { std::printf("goal fail\n"); return 2; }

  for (bool fb : {false, true}) {
    QueryEvalOptions opts;
    opts.counting_fallback = fb;
    auto r = EvaluateQuery(*p, &db, *goal, RecursionMethod::kCounting, opts);
    if (!r.ok()) {
      std::printf("fallback=%d: ERROR %s\n", fb, r.status().ToString().c_str());
    } else {
      std::printf("fallback=%d: ok %zu answers method=%d note=[%s]\n", fb,
                  r->answers.size(), (int)r->method_used, r->note.c_str());
    }
  }
  return 0;
}
