# Empty dependencies file for bench_kbz_quality.
# This may be replaced when dependencies are built.
