// Experiment E4 — the recursive-method comparison of the paper's
// section 7.3: Magic Sets [BMSU 85] and generalized Counting [SZ 86] are
// used because they "have been shown to produce some of the most efficient
// [BR 86] and general algorithms to support recursion".
//
// For bound queries over the classic same-generation and ancestor
// workloads we run all four CC-node methods end to end on real data and
// report tuples examined, tuples derived, and wall-clock. Expected shape:
//   naive > seminaive >> magic >= counting   (work, for bound queries)
// plus the counting->magic fallback on cyclic data.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "bench_util.h"
#include "engine/query_eval.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr const char* kSgRules = R"(
  sg(X, Y) <- flat(X, Y).
  sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
)";

constexpr const char* kAncRules = R"(
  anc(X, Y) <- par(X, Y).
  anc(X, Y) <- par(X, Z), anc(Z, Y).
)";

void RunRow(const Program& program, Database* db, const Literal& goal,
            Table* table, const std::string& workload) {
  for (RecursionMethod method :
       {RecursionMethod::kNaive, RecursionMethod::kSemiNaive,
        RecursionMethod::kMagic, RecursionMethod::kCounting}) {
    QueryEvalOptions options;
    options.counting_fallback = false;
    Stopwatch watch;
    auto result = EvaluateQuery(program, db, goal, method, options);
    double ms = watch.ElapsedMs();
    if (!result.ok()) {
      table->AddRow({workload, RecursionMethodToString(method), "-", "-", "-",
                     "-", result.status().ToString().substr(0, 40)});
      continue;
    }
    table->AddRow(
        {workload, RecursionMethodToString(method),
         std::to_string(result->answers.size()),
         Fmt(static_cast<double>(result->stats.counters.tuples_examined),
             "%.3g"),
         Fmt(static_cast<double>(result->stats.counters.derivations), "%.3g"),
         Fmt(ms, "%.2f"), ""});
  }
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E4", "recursive methods on bound queries "
                      "(tuples examined = machine-independent work)");
  Table table({"workload", "method", "answers", "examined", "derived", "ms",
               "note"});

  {
    auto program = ParseProgram(kSgRules);
    for (auto [fanout, depth] : {std::pair<size_t, size_t>{2, 6},
                                 std::pair<size_t, size_t>{3, 5},
                                 std::pair<size_t, size_t>{4, 4}}) {
      Database db;
      size_t nodes = testing::MakeSameGenerationData(fanout, depth, &db);
      Literal goal = Literal::Make(
          "sg", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
                 Term::MakeVariable("Y")});
      RunRow(*program, &db, goal,
             &table,
             "sg.bf f=" + std::to_string(fanout) +
                 " d=" + std::to_string(depth));
    }
  }
  {
    auto program = ParseProgram(kAncRules);
    for (auto [fanout, depth] : {std::pair<size_t, size_t>{2, 10},
                                 std::pair<size_t, size_t>{3, 7}}) {
      Database db;
      size_t nodes = testing::MakeTreeParentData(fanout, depth, &db);
      Literal goal = Literal::Make(
          "anc", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
                  Term::MakeVariable("Y")});
      RunRow(*program, &db, goal, &table,
             "anc.bf f=" + std::to_string(fanout) +
                 " d=" + std::to_string(depth));
    }
  }
  table.Print();

  // Free query: magic degenerates (no binding to exploit).
  bench::Banner("E4b", "free query sg(X, Y)? — pipelined methods lose their "
                       "advantage");
  {
    Table free_table({"workload", "method", "answers", "examined", "ms",
                      "note"});
    auto program = ParseProgram(kSgRules);
    Database db;
    testing::MakeSameGenerationData(3, 4, &db);
    Literal goal = Literal::Make(
        "sg", {Term::MakeVariable("X"), Term::MakeVariable("Y")});
    for (RecursionMethod method :
         {RecursionMethod::kSemiNaive, RecursionMethod::kMagic}) {
      QueryEvalOptions options;
      Stopwatch watch;
      auto result = EvaluateQuery(*program, &db, goal, method, options);
      double ms = watch.ElapsedMs();
      if (!result.ok()) continue;
      free_table.AddRow(
          {"sg.ff f=3 d=4", RecursionMethodToString(method),
           std::to_string(result->answers.size()),
           Fmt(static_cast<double>(result->stats.counters.tuples_examined),
               "%.3g"),
           Fmt(ms, "%.2f"), result->note});
    }
    free_table.Print();
  }

  // Cyclic data: counting diverges and falls back to magic.
  bench::Banner("E4c", "counting on cyclic data — divergence guard + "
                       "fallback to magic");
  {
    Table cyc({"data", "method requested", "method used", "answers", "note"});
    Program program = *ParseProgram(R"(
      tc(X, Y) <- edge(X, Y).
      tc(X, Y) <- edge(X, Z), tc(Z, Y).
    )");
    Database db;
    testing::MakeCycle(50, &db);
    QueryEvalOptions options;
    options.fixpoint.max_iterations = 500;
    auto result = EvaluateQuery(
        program, &db, *ParseLiteral("tc(0, Y)"), RecursionMethod::kCounting,
        options);
    if (result.ok()) {
      cyc.AddRow({"cycle n=50", "counting",
                  RecursionMethodToString(result->method_used),
                  std::to_string(result->answers.size()),
                  result->note.substr(0, 60)});
    }
    cyc.Print();
  }
}

namespace {

void BM_Method(benchmark::State& state) {
  auto method = static_cast<RecursionMethod>(state.range(0));
  auto program = ParseProgram(kSgRules);
  Database db;
  size_t nodes = testing::MakeSameGenerationData(3, 5, &db);
  Literal goal =
      Literal::Make("sg", {Term::MakeInt(static_cast<int64_t>(nodes - 1)),
                           Term::MakeVariable("Y")});
  QueryEvalOptions options;
  for (auto _ : state) {
    auto result = EvaluateQuery(*program, &db, goal, method, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(RecursionMethodToString(method));
}
BENCHMARK(BM_Method)
    ->Arg(static_cast<int>(RecursionMethod::kNaive))
    ->Arg(static_cast<int>(RecursionMethod::kSemiNaive))
    ->Arg(static_cast<int>(RecursionMethod::kMagic))
    ->Arg(static_cast<int>(RecursionMethod::kCounting));

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("recursion_methods");
  return 0;
}
