# Empty compiler generated dependencies file for bench_safety.
# This may be replaced when dependencies are built.
