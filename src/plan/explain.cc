#include "plan/explain.h"

#include <cstdio>
#include <iterator>
#include <sstream>
#include <vector>

#include "base/strings.h"

namespace ldl {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatMillis(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// The tree-structure label of one node: everything EXPLAIN shows apart
/// from the numeric columns. Matches PlanNode::ToString's vocabulary so the
/// two views read the same.
std::string NodeLabel(const PlanNode& node) {
  std::string label = PlanNodeKindToString(node.kind);
  label += node.materialized ? " [mat]" : " [pipe]";
  if (!node.method.empty()) StrAppend(&label, " ", node.method);
  StrAppend(&label, " ", node.goal.ToString());
  if (node.binding.size() > 0) StrAppend(&label, " :", node.binding.ToString());
  if (node.kind == PlanNodeKind::kAnd && node.rule_index != SIZE_MAX) {
    StrAppend(&label, " (rule ", node.rule_index, ")");
  }
  if (node.kind == PlanNodeKind::kCc) {
    label += " {";
    for (size_t i = 0; i < node.clique_predicates.size(); ++i) {
      if (i) label += ", ";
      label += node.clique_predicates[i].ToString();
    }
    label += "}";
  }
  return label;
}

struct Row {
  std::string label;
  std::vector<std::string> cells;
};

void CollectRows(const PlanNode& node, size_t depth,
                 const ExecutionProfile* profile, std::vector<Row>* rows) {
  Row row;
  row.label = std::string(depth * 2, ' ') + NodeLabel(node);
  row.cells.push_back(FormatDouble(node.est_cost));
  row.cells.push_back(FormatDouble(node.est_cardinality));
  if (profile != nullptr) {
    const NodeActuals* a = profile->Find(&node);
    if (a == nullptr || a->executions == 0) {
      // Never executed directly: builtins are folded into their AND parent;
      // a pure memo-hit node keeps its hit count visible.
      const char* dash = "-";
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(dash);
      row.cells.push_back(a == nullptr ? dash : StrCat(a->memo_hits));
    } else {
      row.cells.push_back(StrCat(a->out_rows));
      row.cells.push_back(StrCat(a->tuples_examined));
      row.cells.push_back(FormatMillis(a->wall_ms));
      row.cells.push_back(StrCat(a->executions));
      row.cells.push_back(StrCat(a->memo_hits));
    }
  }
  rows->push_back(std::move(row));
  for (const auto& child : node.children) {
    CollectRows(*child, depth + 1, profile, rows);
  }
}

}  // namespace

std::string RenderExplain(const PlanNode& tree,
                          const ExecutionProfile* profile) {
  std::vector<Row> rows;
  CollectRows(tree, 0, profile, &rows);

  std::vector<std::string> headers = {"EST COST", "EST ROWS"};
  if (profile != nullptr) {
    headers.insert(headers.end(),
                   {"ROWS", "TUPLES", "TIME MS", "EXEC", "MEMO"});
  }

  size_t label_width = 4;  // "PLAN"
  for (const Row& row : rows) {
    if (row.label.size() > label_width) label_width = row.label.size();
  }
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const Row& row : rows) {
      if (row.cells[c].size() > widths[c]) widths[c] = row.cells[c].size();
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::string& label,
                  const std::vector<std::string>& cells) {
    os << label;
    for (size_t i = label.size(); i < label_width; ++i) os << ' ';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "  ";
      for (size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << cells[c];  // right-aligned numeric columns
    }
    os << '\n';
  };

  emit("PLAN", headers);
  size_t total = label_width;
  for (size_t w : widths) total += 2 + w;
  os << std::string(total, '-') << '\n';
  for (const Row& row : rows) emit(row.label, row.cells);
  return os.str();
}

std::string RenderExplainOptimize(const SearchTracer& tracer,
                                  size_t max_candidate_lines) {
  std::ostringstream os;
  os << "SEARCH OPTIMIZE\n";

  // Disposition summary.
  constexpr CandidateDisposition kAll[] = {
      CandidateDisposition::kKept, CandidateDisposition::kDominated,
      CandidateDisposition::kPrunedBound, CandidateDisposition::kPrunedUnsafe,
      CandidateDisposition::kMemoHit,
      CandidateDisposition::kPrunedUnreachable};
  os << "  " << tracer.candidates().size() << " candidates recorded";
  if (tracer.dropped_candidates() > 0) {
    os << " (+" << tracer.dropped_candidates() << " dropped at cap)";
  }
  os << ":";
  for (CandidateDisposition d : kAll) {
    os << " " << tracer.CountDisposition(d) << " "
       << CandidateDispositionToString(d);
    if (d != kAll[std::size(kAll) - 1]) os << ",";
  }
  os << "\n\n";

  // Scope nesting depths for indentation.
  const auto& scopes = tracer.scopes();
  std::vector<size_t> depth(scopes.size(), 0);
  for (size_t i = 0; i < scopes.size(); ++i) {
    if (scopes[i].parent >= 0) {
      depth[i] = depth[static_cast<size_t>(scopes[i].parent)] + 1;
    }
  }

  // Candidate log in recorded order, a scope header whenever the scope
  // changes (the search is depth-first, so runs per scope are contiguous
  // enough to read as a tree).
  uint32_t last_scope = UINT32_MAX;
  size_t lines = 0;
  for (const SearchCandidate& c : tracer.candidates()) {
    if (lines >= max_candidate_lines) {
      os << "  ... (" << tracer.candidates().size() - lines
         << " more candidates not shown)\n";
      break;
    }
    if (c.scope != last_scope && c.scope < scopes.size()) {
      os << std::string(2 + 2 * depth[c.scope], ' ') << scopes[c.scope].label
         << ":\n";
      last_scope = c.scope;
    }
    const size_t d = c.scope < scopes.size() ? depth[c.scope] + 1 : 1;
    os << std::string(2 + 2 * d, ' ') << "["
       << CandidateDispositionToString(c.disposition) << "] cost "
       << FormatDouble(c.cost);
    std::vector<size_t> order = tracer.OrderOf(c);
    if (!order.empty()) {
      os << "  order";
      for (size_t idx : order) os << " " << idx;
    }
    const std::string& detail = tracer.DetailOf(c);
    if (!detail.empty()) os << "  -- " << detail;
    os << "\n";
    ++lines;
  }

  // The final memo lattice: Figure 7-1's per-binding table.
  os << "\nMEMO LATTICE (" << tracer.memo().size() << " entries)\n";
  for (const MemoNodeInfo& node : tracer.memo()) {
    os << "  " << (node.winning ? "* " : "  ") << node.key;
    if (!node.safe) {
      os << "  UNSAFE";
      if (!node.note.empty()) os << " (" << node.note << ")";
    } else {
      os << "  cost " << FormatDouble(node.cost) << "  card "
         << FormatDouble(node.card);
      if (!node.method.empty()) os << "  via " << node.method;
    }
    if (!node.children.empty()) {
      os << "  <- ";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i) os << ", ";
        const uint32_t child = node.children[i];
        os << (child < tracer.memo().size() ? tracer.memo()[child].key
                                            : std::string("?"));
      }
    }
    os << "\n";
  }
  os << "  (* = on the chosen plan)\n";
  return os.str();
}

}  // namespace ldl
