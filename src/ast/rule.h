#ifndef LDLOPT_AST_RULE_H_
#define LDLOPT_AST_RULE_H_

#include <ostream>
#include <string>
#include <vector>

#include "ast/literal.h"

namespace ldl {

/// A Horn-clause rule: head <- body. An empty body makes the rule a fact
/// definition (the parser routes ground facts to the database instead).
class Rule {
 public:
  Rule() = default;
  Rule(Literal head, std::vector<Literal> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  const Literal& head() const { return head_; }
  const std::vector<Literal>& body() const { return body_; }
  std::vector<Literal>* mutable_body() { return &body_; }
  Literal* mutable_head() { return &head_; }

  /// Distinct variable names occurring anywhere in the rule, in first-
  /// occurrence order.
  std::vector<std::string> Variables() const;

  /// Range restriction: every head variable occurs in a positive,
  /// non-builtin body literal or in the right-hand side chain of `=`
  /// builtins grounded by such literals. (A necessary condition for safety;
  /// the full analysis lives in src/safety.)
  bool IsRangeRestricted() const;

  /// "h(..) <- b1(..), b2(..)."
  std::string ToString() const;

 private:
  Literal head_;
  std::vector<Literal> body_;
};

std::ostream& operator<<(std::ostream& os, const Rule& rule);

}  // namespace ldl

#endif  // LDLOPT_AST_RULE_H_
