// Experiment E11 — cost-model calibration and plan regret.
//
// The paper treats the cost model as a trusted black box: the optimizer
// minimizes estimated cost and never looks back. This bench closes the
// loop: for each example workload it runs EXPLAIN ANALYZE, pairs the
// optimizer's per-node cardinality estimates with the measured actuals
// (q-error = max(est/act, act/est)), and re-optimizes under the measured
// cardinalities to get the hindsight-optimal plan — reporting how much the
// chosen plan *actually* cost relative to it (regret ratio). A ratio of 1
// means the estimation errors, however large, did not change any decision.
//
// Rows are per (workload, search strategy); the JSON export feeds the
// bench-regression harness (tools/bench_diff).

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ldl/ldl.h"
#include "testing/workloads.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

struct Workload {
  std::string name;
  std::string rules;
  std::function<size_t(Database*)> data;  ///< returns node count
  std::function<std::string(size_t)> query;  ///< goal text from node count
};

std::vector<Workload> MakeWorkloads() {
  return {
      {"anc.bf tree f=3 d=6",
       R"(anc(X, Y) <- par(X, Y).
          anc(X, Y) <- par(X, Z), anc(Z, Y).)",
       [](Database* db) { return testing::MakeTreeParentData(3, 6, db); },
       [](size_t nodes) {
         return "anc(" + std::to_string(nodes - 1) + ", Y)";
       }},
      {"sg.bf tree f=3 d=5",
       R"(sg(X, Y) <- flat(X, Y).
          sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).)",
       [](Database* db) { return testing::MakeSameGenerationData(3, 5, db); },
       [](size_t nodes) {
         return "sg(" + std::to_string(nodes - 1) + ", Y)";
       }},
      {"gp.bf join f=4 d=5",
       R"(gp(X, Z) <- par(X, Y), par(Y, Z).
          ggp(X, W) <- gp(X, Z), par(Z, W).)",
       [](Database* db) { return testing::MakeTreeParentData(4, 5, db); },
       [](size_t nodes) {
         return "ggp(" + std::to_string(nodes - 1) + ", W)";
       }},
  };
}

const std::vector<SearchStrategy>& Strategies() {
  static const std::vector<SearchStrategy> kStrategies = {
      SearchStrategy::kExhaustive, SearchStrategy::kDynamicProgramming,
      SearchStrategy::kKbz, SearchStrategy::kAnnealing,
      SearchStrategy::kLexicographic};
  return kStrategies;
}

void PrintExperiment() {
  bench::Banner("E11", "cost-model calibration: q-error and plan regret "
                       "per search strategy");
  Table table({"workload", "strategy", "nodes", "q-err p50", "q-err p95",
               "q-err max", "regret ratio", "changes", "analyze ms"});

  for (const Workload& w : MakeWorkloads()) {
    for (SearchStrategy strategy : Strategies()) {
      OptimizerOptions options;
      options.strategy = strategy;
      LdlSystem sys(options);
      if (!sys.LoadProgram(w.rules).ok()) continue;
      size_t nodes = w.data(sys.database());
      sys.RefreshStatistics();

      Stopwatch watch;
      auto analyzed = sys.AnalyzeCalibrated(w.query(nodes));
      double ms = watch.ElapsedMs();
      if (!analyzed.ok()) {
        table.AddRow({w.name, SearchStrategyToString(strategy), "-", "-", "-",
                      "-", "-", analyzed.status().ToString().substr(0, 40),
                      Fmt(ms, "%.2f")});
        continue;
      }
      const CalibrationReport& report = analyzed->report;
      const RegretAnalysis& regret = report.regret();
      table.AddRow(
          {w.name, SearchStrategyToString(strategy),
           std::to_string(report.sample_count()),
           Fmt(report.median_q_error(), "%.3f"),
           Fmt(report.p95_q_error(), "%.3f"),
           Fmt(report.max_q_error(), "%.3f"),
           regret.computed ? Fmt(regret.ratio(), "%.3f") : "-",
           regret.computed ? std::to_string(regret.changes.size())
                           : regret.note.substr(0, 40),
           Fmt(ms, "%.2f")});
    }
  }
  table.Print();
}

void BM_AnalyzeCalibrated(benchmark::State& state) {
  OptimizerOptions options;
  LdlSystem sys(options);
  if (!sys.LoadProgram(R"(anc(X, Y) <- par(X, Y).
                          anc(X, Y) <- par(X, Z), anc(Z, Y).)")
           .ok()) {
    state.SkipWithError("load failed");
    return;
  }
  size_t nodes = testing::MakeTreeParentData(3, 6, sys.database());
  sys.RefreshStatistics();
  std::string goal = "anc(" + std::to_string(nodes - 1) + ", Y)";
  for (auto _ : state) {
    auto analyzed = sys.AnalyzeCalibrated(goal);
    benchmark::DoNotOptimize(analyzed);
  }
}
BENCHMARK(BM_AnalyzeCalibrated);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("calibration");
  return 0;
}
