#ifndef LDLOPT_OBS_PROMETHEUS_H_
#define LDLOPT_OBS_PROMETHEUS_H_

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/process_metrics.h"

namespace ldl {

/// Options for the text exposition. The prefix namespaces every metric
/// ("engine.tuples_examined" -> "ldlopt_engine_tuples_examined") so a
/// scrape of several processes stays unambiguous.
struct PrometheusOptions {
  std::string prefix = "ldlopt_";
  /// When set, a `<prefix>build_info{compiler=...,git=...} 1` info gauge is
  /// emitted first — the conventional carrier for build metadata.
  const BuildInfo* build_info = nullptr;
};

/// Exposition-format metric name: the registry-canonical name with '.'
/// mapped to '_', behind `prefix`. The result always matches
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
std::string PromMetricName(std::string_view name, std::string_view prefix);

/// Escapes a label value per the text exposition format: backslash, double
/// quote, and newline. Does not add the surrounding quotes.
std::string PromLabelEscape(std::string_view value);

/// Writes the registry in Prometheus text exposition format v0.0.4:
/// HELP/TYPE comment pairs, counters and gauges as single samples, and
/// histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
/// The log2 buckets map to le bounds of 2^b; a value v lands under the
/// smallest emitted bound >= its bucket's upper edge, so bucket shapes are
/// approximate within a factor of two — same contract as
/// Histogram::percentile. Output is byte-deterministic for a fixed registry
/// state (names sorted, fixed number formatting).
void WritePrometheus(const MetricsRegistry& registry, std::ostream& os,
                     const PrometheusOptions& options = {});

/// WritePrometheus into a string (the /metrics response body).
std::string RenderPrometheus(const MetricsRegistry& registry,
                             const PrometheusOptions& options = {});

}  // namespace ldl

#endif  // LDLOPT_OBS_PROMETHEUS_H_
