#ifndef LDLOPT_ENGINE_COUNTING_H_
#define LDLOPT_ENGINE_COUNTING_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "base/status.h"

namespace ldl {

/// Result of the generalized counting rewrite [SZ 86] for a bound query on
/// a linear recursive clique.
struct CountingProgram {
  /// Rewritten rule base over cnt.p / ans.p predicates (counter in arg 0).
  Program rewritten;
  /// Seed fact cnt.p(0, query constants).
  Literal seed;
  /// ans.p: arity = 1 (counter) + number of free query arguments.
  PredicateId answer_pred;
  /// ans.p(0, free-arg terms of the original goal).
  Literal answer_goal;

  std::string ToString() const;
};

/// Tests whether the counting method applies to `query_goal` over `program`
/// and, if so, produces the counting-rewritten program:
///
///   cnt.p(0, b)        for the query's bound constants b;
///   cnt.p(J, rb) <- cnt.p(I, hb), up-part, J = I + 1.   (ascent)
///   ans.p(I, ef) <- cnt.p(I, eb), exit-body.            (per exit rule)
///   ans.p(I, hf) <- ans.p(J, rf), down-part, I = J - 1. (descent)
///
/// Applicability (kUnsupported otherwise):
///  - the query predicate is in a single-predicate recursive clique with
///    exactly one recursive rule, linear (one self-occurrence);
///  - all other body literals are base predicates or builtins;
///  - the query has at least one bound argument, and the recursive call is
///    reached with the same adornment (stable binding passing);
///  - the body splits into an "up" part (connects bound head arguments to
///    the recursive call's bound arguments) and a "down" part whose
///    variables are disjoint from the up part except through the recursive
///    call — the separability that lets counting forget up-bindings and
///    keep only the level number, which is precisely its advantage over
///    magic sets.
///
/// The classic caveat applies: on cyclic data the ascent never terminates;
/// the evaluator's iteration guard turns that into kResourceExhausted and
/// callers fall back to magic sets.
Result<CountingProgram> CountingRewrite(const Program& program,
                                        const Literal& query_goal);

}  // namespace ldl

#endif  // LDLOPT_ENGINE_COUNTING_H_
