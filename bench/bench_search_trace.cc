// Experiment E12 — cost of search introspection:
//
// The SearchTracer (obs/search_trace.h) records every candidate order the
// join-order search visits plus the final memo lattice. Its contract is the
// same as the span tracer's: a *disabled* tracer attached to the optimizer
// must cost one predictable branch per candidate (no allocations — asserted
// in tests/obs_test.cc), and an *enabled* tracer must stay under 5% of
// optimization wall time wherever the search itself does real work: each
// candidate's recording (a few arena appends, no strings) is tiny next to
// the sequence costing that produced it.
//
// Three workload shapes stress different event mixes:
//  - a bound chain join (one wide rule, branch-and-bound enumeration):
//    costing-dominated, thousands of candidate events — the shape the <5%
//    contract is about;
//  - a layered nonrecursive program (many small rules, heavy NR-OPT
//    memoization): adversarial, because most events are memo hits whose
//    "search" is a hash lookup, and the per-subplan lattice bookkeeping is
//    paid against trivially cheap two-literal order searches;
//  - a recursive same-generation program (clique search, method race).
// Each runs with no tracer, a disabled tracer, and an enabled tracer; we
// report the best-of-N per-optimize wall time and the relative overhead.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "ast/parser.h"
#include "base/strings.h"
#include "bench_util.h"
#include "obs/search_trace.h"
#include "optimizer/optimizer.h"

namespace ldl {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

struct Workload {
  std::string name;
  Program program;
  Statistics stats;
  Literal goal;
  size_t loop = 10;  ///< optimizes per timing sample (fewer for slow ones)
};

/// Bound chain join over `n` base relations: a single wide rule, so the
/// whole optimize is one exhaustive branch-and-bound enumeration. Costing
/// dominates; candidate recording rides along one event per cost step.
Workload MakeChain(size_t n) {
  Workload w;
  w.name = StrCat("chain join ", n);
  std::string text = StrCat("q(X0, X", n, ") <- ");
  for (size_t i = 1; i <= n; ++i) {
    text += StrCat("r", i, "(X", i - 1, ", X", i, ")",
                   i == n ? ".\n" : ", ");
    w.stats.Set({StrCat("r", i), 2},
                {500.0 + 700.0 * static_cast<double>((i * 3) % 5),
                 {90.0 + 40.0 * static_cast<double>(i % 4), 110.0}});
  }
  w.program = *ParseProgram(text);
  w.goal = Literal::Make("q", {Term::MakeInt(1), Term::MakeVariable("Z")});
  w.loop = 3;  // ~10 ms per optimize
  return w;
}

/// Layered nonrecursive join program: `layers` layers of `width` predicates,
/// each joining two predicates of the layer below (same shape as E6).
Workload MakeLayered(size_t layers, size_t width) {
  std::string text;
  for (size_t l = 1; l <= layers; ++l) {
    for (size_t p = 0; p < width; ++p) {
      std::string below1 = (l == 1 ? "base" : "p") + std::to_string(l - 1) +
                           "_" + std::to_string(p % width);
      std::string below2 = (l == 1 ? "base" : "p") + std::to_string(l - 1) +
                           "_" + std::to_string((p + 1) % width);
      text += StrCat("p", l, "_", p, "(X, Z) <- ", below1, "(X, Y), ",
                     below2, "(Y, Z).\n");
    }
  }
  Workload w;
  w.name = StrCat("layered ", layers, "x", width);
  w.program = *ParseProgram(text);
  for (size_t p = 0; p < width; ++p) {
    w.stats.Set({StrCat("base0_", p), 2},
                {1000.0 + 100.0 * static_cast<double>(p), {100.0, 100.0}});
  }
  w.goal = Literal::Make(StrCat("p", layers, "_0"),
                         {Term::MakeVariable("X"), Term::MakeVariable("Z")});
  return w;
}

/// Recursive same-generation clique with flat relatives: clique search,
/// SIP orders, and the recursive-method cost race.
Workload MakeSameGeneration() {
  Workload w;
  w.name = "sg recursive";
  w.program = *ParseProgram(R"(
    sg(X, Y) <- flat(X, Y).
    sg(X, Y) <- up(X, U), sg(U, V), down(V, Y).
  )");
  w.stats.Set({"flat", 2}, {500.0, {120.0, 120.0}});
  w.stats.Set({"up", 2}, {2000.0, {400.0, 300.0}});
  w.stats.Set({"down", 2}, {2000.0, {300.0, 400.0}});
  w.goal = Literal::Make("sg", {Term::MakeInt(1), Term::MakeVariable("Y")});
  return w;
}

enum class TracerMode { kNone, kDisabled, kEnabled };

const char* TracerModeName(TracerMode mode) {
  switch (mode) {
    case TracerMode::kNone: return "none";
    case TracerMode::kDisabled: return "disabled";
    case TracerMode::kEnabled: return "enabled";
  }
  return "?";
}

/// Minimum per-optimize wall ms over `kSamples` samples of `w.loop`
/// optimizes each (the minimum is the standard noise-robust estimator for
/// overhead comparisons: background load only ever adds time); also
/// reports the candidate count of one traced run.
double MeasureMs(const Workload& w, TracerMode mode, size_t* candidates) {
  constexpr size_t kSamples = 21;
  SearchTracer tracer;
  tracer.set_enabled(mode == TracerMode::kEnabled);
  std::vector<double> ms;
  ms.reserve(kSamples);
  for (size_t s = 0; s < kSamples; ++s) {
    Stopwatch watch;
    for (size_t i = 0; i < w.loop; ++i) {
      if (mode == TracerMode::kEnabled) tracer.Clear();
      OptimizerOptions options;
      if (mode != TracerMode::kNone) options.trace.search = &tracer;
      Optimizer opt(w.program, w.stats, options);
      benchmark::DoNotOptimize(opt.Optimize(w.goal));
    }
    ms.push_back(watch.ElapsedMs() / static_cast<double>(w.loop));
  }
  if (candidates != nullptr) {
    *candidates = mode == TracerMode::kEnabled ? tracer.candidates().size() : 0;
  }
  return *std::min_element(ms.begin(), ms.end());
}

}  // namespace

void PrintExperiment() {
  bench::Banner("E12", "search-trace overhead: optimize wall time with no "
                       "tracer, a disabled tracer, and full recording");
  Table table({"workload", "tracer", "ms/optimize", "overhead %",
               "candidates"});
  for (const Workload& w : {MakeChain(8), MakeLayered(4, 3),
                            MakeSameGeneration()}) {
    double base_ms = 0;
    for (TracerMode mode : {TracerMode::kNone, TracerMode::kDisabled,
                            TracerMode::kEnabled}) {
      size_t candidates = 0;
      double ms = MeasureMs(w, mode, &candidates);
      if (mode == TracerMode::kNone) base_ms = ms;
      double overhead =
          base_ms > 0 ? (ms / base_ms - 1.0) * 100.0 : 0.0;
      table.AddRow({StrCat(w.name, " / ", TracerModeName(mode)),
                    TracerModeName(mode), Fmt(ms, "%.4f"),
                    mode == TracerMode::kNone ? "-" : Fmt(overhead, "%.1f"),
                    mode == TracerMode::kEnabled ? std::to_string(candidates)
                                                 : "-"});
    }
  }
  table.Print();
  std::printf(
      "Expected shape: the disabled rows sit inside measurement noise of\n"
      "the none rows (the contract is one branch per candidate), and every\n"
      "enabled row stays under 5%% — recording a candidate is a couple of\n"
      "arena appends next to the costing that produced it. The layered row\n"
      "is the adversarial bound: nearly all its events are memo hits whose\n"
      "uninstrumented cost is a single hash lookup, which is why that path\n"
      "records a prememoized node index instead of building a key string.\n\n");
}

namespace {

void BM_OptimizeWithTracer(benchmark::State& state) {
  TracerMode mode = static_cast<TracerMode>(state.range(0));
  Workload w = MakeLayered(3, 3);
  SearchTracer tracer;
  tracer.set_enabled(mode == TracerMode::kEnabled);
  for (auto _ : state) {
    if (mode == TracerMode::kEnabled) tracer.Clear();
    OptimizerOptions options;
    if (mode != TracerMode::kNone) options.trace.search = &tracer;
    Optimizer opt(w.program, w.stats, options);
    benchmark::DoNotOptimize(opt.Optimize(w.goal));
  }
  state.SetLabel(TracerModeName(mode));
}
BENCHMARK(BM_OptimizeWithTracer)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace ldl

int main(int argc, char** argv) {
  ldl::PrintExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ldl::bench::FlushJson("search_trace");
  return 0;
}
